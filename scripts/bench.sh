#!/usr/bin/env sh
# Performance report: micro-benchmarks (go test -bench=Micro -benchmem)
# plus the cold-vs-checkpointed campaign timing, emitted as
# BENCH_<date>.json by cmd/bench. Pass -missions 10 for the paper's full
# 850-case campaign (the default slice is 2 missions / 170 cases).
#
# Regression gate:
#   scripts/bench.sh -compare OLD.json NEW.json
# exits nonzero when NEW regresses against OLD (>10% ns/op on any shared
# micro, or any allocs/op increase). Timing deltas only gate when both
# reports' own rep-to-rep spread (ns_spread) stayed within that same 10%
# on the micro — rows where either run's repetitions disagreed more than
# the gate width are printed as noisy and skipped, since on a shared vCPU
# steal time swamps real changes. Allocs/op always gates (deterministic).
# ci.sh runs this automatically
# against the committed baseline (override with BENCH_BASELINE). Each
# report records the campaign spec hash (spec_hash) plus the execution
# mode (runner_mode, batch_width, workers, cov_decimation), so campaign
# wall clock is only compared across identical experiment plans run the
# same way — mode mismatches are noted explicitly, never diffed. Reports
# also record the host window (num_cpu, go_version); comparing across
# differing hosts prints a loud WARNING since wall-clock deltas then
# measure the machine, not the code.
set -eu

case "${1:-}" in
-compare)
	exec go run ./cmd/bench "$@"
	;;
esac

go test -run XXX -bench Micro -benchmem .
go test -run XXX -bench 'Propagate|Transition' -benchmem ./internal/ekf/
exec go run ./cmd/bench "$@"
