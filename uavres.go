// Package uavres is the public API of the drone IMU-fault resilience
// study: a from-scratch Go reproduction of "A Comprehensive Study on
// Drones Resilience in the Presence of Inertial Measurement Unit Faults"
// (DSN 2024).
//
// The library bundles a 6-DOF quadrotor simulator, PX4-style cascaded
// flight controller, error-state EKF, sensor models, the paper's
// seven-primitive IMU fault injector, the two-layer U-space bubble
// system, and a campaign runner that regenerates the paper's Tables
// II-IV.
//
// Quick start — fly one fault-free mission:
//
//	cfg := uavres.DefaultConfig()
//	m := uavres.ValenciaMissions()[0]
//	res, err := uavres.RunMission(cfg, m, nil)
//
// Inject a fault (the paper's "Gyro Freeze" for 10 s at T+90 s):
//
//	inj := &uavres.Injection{
//		Primitive: uavres.Freeze,
//		Target:    uavres.TargetGyro,
//		Start:     90 * time.Second,
//		Duration:  10 * time.Second,
//	}
//	res, err := uavres.RunMission(cfg, m, inj)
//
// Reproduce the paper's full 850-case campaign:
//
//	results := uavres.RunCampaign(ctx, uavres.CampaignOptions{})
//	fmt.Print(uavres.TableII(results))
package uavres

import (
	"context"

	"uavres/internal/bubble"
	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/mission"
	"uavres/internal/mitigation"
	"uavres/internal/physics"
	"uavres/internal/sim"
	"uavres/internal/spec"
)

// Core configuration and scenario types.
type (
	// Config is the full simulation configuration; start from
	// DefaultConfig and override fields.
	Config = sim.Config
	// Mission is one U-space flight plan.
	Mission = mission.Mission
	// DroneSpec is the per-drone data entering the bubble formulas.
	DroneSpec = mission.DroneSpec
	// Result is the complete record of one simulated flight.
	Result = sim.Result
	// Outcome classifies how a mission ended.
	Outcome = sim.Outcome
	// Telemetry is the 1 Hz tracker-rate observation stream.
	Telemetry = sim.Telemetry
	// Observer receives telemetry during a run.
	Observer = sim.Observer
	// TrajPoint is one recorded trajectory sample.
	TrajPoint = sim.TrajPoint
)

// Fault-injection types (the paper's fault model).
type (
	// Injection describes one fault-injection experiment.
	Injection = faultinject.Injection
	// Primitive is one of the seven injectable value generators.
	Primitive = faultinject.Primitive
	// Target selects Accelerometer, Gyrometer, or the whole IMU.
	Target = faultinject.Target
	// FaultClass is one surveyed real-world fault (Table I).
	FaultClass = faultinject.FaultClass
	// Scope selects how many redundant IMUs a fault strikes.
	Scope = faultinject.Scope
)

// The seven fault primitives (paper Section III-A).
const (
	FixedValue = faultinject.FixedValue
	Zeros      = faultinject.Zeros
	Freeze     = faultinject.Freeze
	Random     = faultinject.Random
	MinValue   = faultinject.MinValue
	MaxValue   = faultinject.MaxValue
	Noise      = faultinject.Noise
)

// The three injection targets.
const (
	TargetAccel = faultinject.TargetAccel
	TargetGyro  = faultinject.TargetGyro
	TargetIMU   = faultinject.TargetIMU
)

// The actuator fault extension (DESIGN.md §17): rotor faults addressed
// to a single rotor via Injection.Rotor.
const (
	TargetRotor         = faultinject.TargetRotor
	LossOfEffectiveness = faultinject.LossOfEffectiveness
	StuckRotor          = faultinject.StuckRotor
	FloatRotor          = faultinject.FloatRotor
)

// Airframe selects the rotor layout (Config.Airframe.Layout). Quad-x is
// the paper's vehicle; hexa-x and octo-x fly the redundancy matrix.
type Airframe = physics.Airframe

const (
	QuadX = physics.QuadX
	HexaX = physics.HexaX
	OctoX = physics.OctoX
)

// ParseAirframe resolves an airframe name ("quad-x", "hexa-x", "octo-x",
// case-insensitive).
func ParseAirframe(name string) (Airframe, error) { return physics.ParseAirframe(name) }

// Injection scopes: the paper assumes every redundant IMU is struck
// (ScopeAllUnits); ScopePrimaryUnit is the redundancy ablation.
const (
	ScopeAllUnits    = faultinject.ScopeAllUnits
	ScopePrimaryUnit = faultinject.ScopePrimaryUnit
)

// Mission outcomes.
const (
	OutcomeCompleted = sim.OutcomeCompleted
	OutcomeCrash     = sim.OutcomeCrash
	OutcomeFailsafe  = sim.OutcomeFailsafe
	OutcomeTimeout   = sim.OutcomeTimeout
)

// Campaign types.
type (
	// Case is one planned campaign experiment.
	Case = core.Case
	// CaseResult pairs a case with its outcome.
	CaseResult = core.CaseResult
	// GroupStats is one aggregated table row.
	GroupStats = core.GroupStats
	// CampaignSpec is a declarative, serializable experiment plan:
	// missions, injection matrix, seed policy, config overrides, and
	// selectors, compiled to cases by CompileSpec.
	CampaignSpec = spec.CampaignSpec
	// Selector filters compiled cases by ID (exact or glob) or by
	// injection fields.
	Selector = spec.Selector
)

// PaperSpec returns the canonical built-in spec: the paper's 850-case
// design. Compiling it reproduces PlanCampaign bit-for-bit.
func PaperSpec(seed int64) CampaignSpec { return spec.Paper(seed) }

// LoadSpec reads and validates a campaign spec from a JSON file.
// Unknown fields are rejected.
func LoadSpec(path string) (CampaignSpec, error) { return spec.Load(path) }

// CompileSpec expands a spec against a scenario (nil: Valencia) into
// executable cases and stamps each with its content hash under cfg —
// the cache key resumable campaigns compare.
func CompileSpec(s CampaignSpec, scenario []Mission, cfg Config) ([]Case, error) {
	cases, err := s.Compile(scenario)
	if err != nil {
		return nil, err
	}
	spec.AttachFingerprints(cases, cfg)
	return cases, nil
}

// MitigationConfig configures the optional software fault-mitigation
// pipeline (gyro plausibility clamp, spike-median filter, stuck-sensor
// guard) — the paper's proposed future-work direction, implemented.
type MitigationConfig = mitigation.Config

// DefaultMitigation returns the evaluated mitigation stack; assign it to
// Config.Mitigation to enable.
func DefaultMitigation() MitigationConfig { return mitigation.DefaultConfig() }

// DefaultConfig returns the reference configuration used throughout the
// reproduction (physics at 500 Hz, IMU at 250 Hz, three redundant IMUs,
// the paper's failsafe defaults).
func DefaultConfig() Config { return sim.DefaultConfig() }

// ValenciaMissions returns the paper's ten-mission urban scenario.
func ValenciaMissions() []Mission { return mission.Valencia() }

// FaultModel returns the paper's Table I fault registry.
func FaultModel() []FaultClass { return faultinject.Registry() }

// Primitives lists the seven injection primitives.
func Primitives() []Primitive { return faultinject.Primitives() }

// Targets lists the three injection targets.
func Targets() []Target { return faultinject.Targets() }

// InnerBubbleRadius computes the paper's Eq. 1 static inner bubble for a
// drone, given the U-space tracking interval in seconds.
func InnerBubbleRadius(spec DroneSpec, trackingIntervalSec float64) float64 {
	return bubble.InnerRadius(spec, trackingIntervalSec)
}

// RunMission simulates one mission. inj is nil for a gold (fault-free)
// run; obs may be nil or receive 1 Hz telemetry.
func RunMission(cfg Config, m Mission, inj *Injection, obs ...Observer) (Result, error) {
	var o Observer
	if len(obs) > 0 {
		o = obs[0]
	}
	return sim.Run(cfg, m, inj, o)
}

// CampaignOptions parameterizes RunCampaign.
type CampaignOptions struct {
	// Config overrides the per-run configuration (zero value: defaults).
	Config Config
	// Seed is the campaign base seed (default 1).
	Seed int64
	// Workers sets the pool size (default GOMAXPROCS).
	Workers int
	// Missions overrides the scenario (default: Valencia).
	Missions []Mission
	// Progress, if non-nil, receives (done, total) after each case.
	Progress func(done, total int)
}

// PlanCampaign generates the paper's 850 experiment cases.
func PlanCampaign(opts CampaignOptions) []Case {
	ms := opts.Missions
	if ms == nil {
		ms = mission.Valencia()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return core.Plan(ms, seed)
}

// RunCampaign plans and executes the full campaign, honoring ctx
// cancellation. Per-case infrastructure failures are reported in
// CaseResult.Err without aborting the sweep.
func RunCampaign(ctx context.Context, opts CampaignOptions) []CaseResult {
	return RunCases(ctx, opts, PlanCampaign(opts))
}

// RunCases executes pre-compiled cases — from PlanCampaign or
// CompileSpec — on the campaign runner, honoring ctx cancellation.
func RunCases(ctx context.Context, opts CampaignOptions, cases []Case) []CaseResult {
	runner := core.NewRunner()
	//lint:allow floatcmp zero-value detection of an unset config, never a computed value
	if opts.Config.PhysicsDt != 0 {
		runner.Config = opts.Config
	}
	runner.Workers = opts.Workers
	runner.Missions = opts.Missions
	runner.Progress = opts.Progress
	return runner.RunAll(ctx, cases)
}

// TableI renders the paper's fault model table.
func TableI() string { return core.RenderFaultModel() }

// TableII renders the duration-grouped summary (paper Table II).
func TableII(results []CaseResult) string { return core.RenderTableII(results) }

// TableIII renders the fault-grouped summary (paper Table III).
func TableIII(results []CaseResult) string { return core.RenderTableIII(results) }

// TableIV renders the failure analysis (paper Table IV).
func TableIV(results []CaseResult) string { return core.RenderTableIV(results) }

// GoldStats aggregates the fault-free reference runs.
func GoldStats(results []CaseResult) GroupStats { return core.GoldStats(results) }

// StatsByDuration groups faulty runs by injection duration.
func StatsByDuration(results []CaseResult) []GroupStats { return core.ByDuration(results) }

// StatsByFault groups faulty runs by the 21 injection labels.
func StatsByFault(results []CaseResult) []GroupStats { return core.ByFault(results) }

// StatsByComponent groups faulty runs by injection target.
func StatsByComponent(results []CaseResult) []GroupStats { return core.ByComponent(results) }

// StatsByAirframe groups all runs by rotor layout (the redundancy
// comparison; empty Case.Airframe reports as quad-x).
func StatsByAirframe(results []CaseResult) []GroupStats { return core.ByAirframe(results) }

// ActuatorPrimitives lists the rotor-fault primitives.
func ActuatorPrimitives() []Primitive { return faultinject.ActuatorPrimitives() }

// SaveResults and LoadResults persist campaign results as JSON files.
func SaveResults(path string, results []CaseResult) error {
	return core.SaveResultsFile(path, results)
}

// LoadResults reads campaign results saved by SaveResults.
func LoadResults(path string) ([]CaseResult, error) {
	return core.LoadResultsFile(path)
}
