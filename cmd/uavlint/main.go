// Command uavlint runs the simulation-aware static-analysis suite over
// this repository. It walks the given package patterns (default ./...),
// applies every enabled analyzer, prints findings as
//
//	file:line: [check] message
//
// and exits non-zero when anything is found — making it usable as a hard
// CI gate (see ci.sh).
//
// Usage:
//
//	uavlint [flags] [patterns]
//	uavlint -list                       # show the analyzer suite
//	uavlint -floatcmp=false ./...       # disable one analyzer
//	uavlint -json ./...                 # machine-readable report on stdout
//	uavlint -fix ./...                  # apply suggested rewrites in place
//	uavlint -unused-suppressions ./...  # also fail on stale //lint:allow
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"uavres/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "write a machine-readable JSON report to stdout instead of text")
	fix := flag.Bool("fix", false, "apply suggested fixes in place; remaining findings are still reported")
	unused := flag.Bool("unused-suppressions", false, "report //lint:allow directives that suppressed nothing")
	all := lint.All()
	enabled := map[string]*bool{}
	for _, a := range all {
		enabled[a.Name()] = flag.Bool(a.Name(), true, "enable the "+a.Name()+" analyzer: "+a.Doc())
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	var suite []lint.Analyzer
	for _, a := range all {
		if *enabled[a.Name()] {
			suite = append(suite, a)
		}
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "uavlint:", err)
		return 2
	}
	runner, err := lint.NewRunner(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uavlint:", err)
		return 2
	}
	runner.Analyzers = suite
	runner.ReportUnusedAllows = *unused

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := runner.Run(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uavlint:", err)
		return 2
	}

	if *fix {
		applied, err := lint.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uavlint:", err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "uavlint: applied %d fix(es)\n", applied)
			// The tree changed under the analyzers: re-lint so the report
			// (and the exit code) reflects what is actually left.
			runner, err = lint.NewRunner(modRoot)
			if err != nil {
				fmt.Fprintln(os.Stderr, "uavlint:", err)
				return 2
			}
			runner.Analyzers = suite
			runner.ReportUnusedAllows = *unused
			findings, err = runner.Run(patterns...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "uavlint:", err)
				return 2
			}
		}
	}

	for i := range findings {
		findings[i].Pos.Filename = relPath(findings[i].Pos.Filename)
	}
	if *jsonOut {
		if err := lint.WriteJSONReport(os.Stdout, runner.ModPath, findings); err != nil {
			fmt.Fprintln(os.Stderr, "uavlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "uavlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// relPath shortens a finding path relative to the working directory when
// possible.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}
