// Command campaignd is the sharded multi-process campaign service: an
// HTTP coordinator over the content-addressed result store
// (internal/store). POST a CampaignSpec to /run and the daemon compiles
// it, looks every fingerprinted case up in the store, shards the
// miss-set into prefix-coherent units (one mission's forkable cases
// stay together, so checkpoint-and-fork and lockstep batching apply
// inside each worker), fans the units out to a local pool of -worker
// subprocesses speaking JSON over stdin/stdout, and streams the merged
// results — cache hits replayed byte-identically, fresh results as they
// land — into one well-formed results file. Submitting an overlapping
// spec later simulates only the complement.
//
// Usage:
//
//	campaignd [-addr 127.0.0.1:8383] [-store out/store] [-out-dir out/campaignd]
//	campaignd [-worker-procs N] [-worker-threads M] [-addr-file PATH] [-prune-bytes B]
//	campaignd -submit spec.json [-addr HOST:PORT]   (client: POST and print the summary)
//	campaignd -worker                               (internal: worker subprocess)
//
// Endpoints: POST /run (synchronous; returns a runSummary), GET /status
// (current campaign snapshot incl. cache-hit ratio), GET /store/stats,
// GET /metrics, pprof under /debug/pprof/.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"uavres/internal/spec"
	"uavres/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8383", "listen address (daemon) or daemon address (-submit); port 0 picks a free port — see -addr-file")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (lets scripts use -addr with port 0)")
		storeDir   = flag.String("store", "out/store", "content-addressed result store directory")
		outDir     = flag.String("out-dir", "out/campaignd", "directory for merged per-run results files")
		procs      = flag.Int("worker-procs", 0, "worker subprocesses (0 = a small pool sized from the CPU count)")
		threads    = flag.Int("worker-threads", 0, "simulation threads per worker process (0 = CPU count / processes)")
		pruneBytes = flag.Int64("prune-bytes", 0, "if > 0, prune the store oldest-first down to this byte budget at startup")
		worker     = flag.Bool("worker", false, "run as a worker subprocess: JSON protocol on stdin/stdout (internal)")
		submit     = flag.String("submit", "", "client mode: POST this CampaignSpec file to the daemon at -addr, print the summary, exit")
		quiet      = flag.Bool("q", false, "suppress per-run progress output")
	)
	flag.Parse()

	if *worker {
		if err := workerMain(context.Background(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if *submit != "" {
		return submitRun(*addr, *submit)
	}

	nproc := *procs
	if nproc < 1 {
		nproc = runtime.NumCPU() / 2
		if nproc < 1 {
			nproc = 1
		}
		if nproc > 4 {
			nproc = 4
		}
	}
	nthread := *threads
	if nthread < 1 {
		nthread = runtime.NumCPU() / nproc
		if nthread < 1 {
			nthread = 1
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: -out-dir: %v\n", err)
		return 1
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		return 1
	}
	defer st.Close()
	if *pruneBytes > 0 {
		removed, err := st.Prune(*pruneBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaignd: prune:", err)
			return 1
		}
		if removed > 0 && !*quiet {
			fmt.Printf("campaignd: pruned %d object(s) to fit %d bytes\n", removed, *pruneBytes)
		}
	}

	// The wall clock enters here and nowhere deeper, mirroring
	// cmd/campaign: everything below sees an injected obs.Clock.
	startAt := time.Now()
	clock := func() float64 { return time.Since(startAt).Seconds() }

	srvr := newServer(st, *outDir, nproc, nthread, *quiet, clock)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: -addr: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "campaignd: -addr-file: %v\n", err)
			return 1
		}
	}
	stats := st.Stats()
	fmt.Printf("campaignd: serving on http://%s (store %s: %d objects, %d bytes; %d worker procs x %d threads)\n",
		bound, *storeDir, stats.Objects, stats.Bytes, nproc, nthread)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	httpSrv := &http.Server{Handler: srvr.mux()}
	go func() {
		<-ctx.Done()
		_ = httpSrv.Close()
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		return 1
	}
	return 0
}

// submitRun is the bundled client: it validates the spec locally (fast
// failure, same schema the daemon enforces), POSTs it to /run, and
// relays the summary JSON to stdout.
func submitRun(addr, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		return 1
	}
	if _, err := spec.Parse(data); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		return 1
	}
	resp, err := http.Post("http://"+addr+"/run", "application/json", bytes.NewReader(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		return 1
	}
	os.Stdout.Write(body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "campaignd: daemon returned %s\n", resp.Status)
		return 1
	}
	return 0
}
