package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"uavres/internal/core"
	"uavres/internal/sim"
)

// The worker protocol is newline-delimited JSON over stdin/stdout: the
// coordinator sends one init message, the worker answers ready, then
// each work unit is answered with its results before the next unit is
// read. One message in flight per worker keeps the protocol trivially
// ordered; parallelism comes from the worker pool, not pipelining.
//
//	→ {"init":{"config":{...},"workers":N,...}}
//	← {"ready":true}
//	→ {"unit":{"seq":0,"cases":[...]}}
//	← {"seq":0,"results":[...]}
//	→ EOF (stdin closes)   — the worker exits 0
//
// Results carry the FULL per-case payloads (Diagnostics, Trajectory):
// the coordinator owns stripping, storage, and streaming, and the JSON
// round trip is exact (shortest round-trip floats), so a merged results
// file is bit-identical to one produced in-process by cmd/campaign.

// workerInit configures the worker's runner once per process. The
// config is the campaign's final effective sim.Config, so fingerprints
// computed by the coordinator stay valid for the results the worker
// produces.
type workerInit struct {
	Config     sim.Config `json:"config"`
	Workers    int        `json:"workers"`
	Checkpoint bool       `json:"checkpoint"`
	Batch      bool       `json:"batch"`
	BatchWidth int        `json:"batch_width,omitempty"`
}

// workerUnit is one prefix-coherent slice of the miss-set: every case
// of a checkpoint group travels together (core.ShardCases), so the
// worker's checkpoint-and-fork and lockstep batching engage exactly as
// they would in-process.
type workerUnit struct {
	Seq   int         `json:"seq"`
	Cases []core.Case `json:"cases"`
}

// workerRequest is one coordinator→worker message: init or unit.
type workerRequest struct {
	Init *workerInit `json:"init,omitempty"`
	Unit *workerUnit `json:"unit,omitempty"`
}

// workerResponse is one worker→coordinator message: the ready ack or a
// finished unit. Err reports a unit-level failure (the coordinator
// converts it into per-case errors rather than failing the campaign).
type workerResponse struct {
	Ready   bool              `json:"ready,omitempty"`
	Seq     int               `json:"seq"`
	Results []core.CaseResult `json:"results,omitempty"`
	Err     string            `json:"err,omitempty"`
}

// workerMain runs the worker side of the protocol until its input
// closes. It is io-parameterized so tests drive it through pipes; the
// -worker subprocess wires stdin/stdout.
func workerMain(ctx context.Context, in io.Reader, out io.Writer) error {
	dec := json.NewDecoder(in)
	enc := json.NewEncoder(out)

	var first workerRequest
	if err := dec.Decode(&first); err != nil {
		return fmt.Errorf("campaignd worker: reading init: %w", err)
	}
	if first.Init == nil {
		return fmt.Errorf("campaignd worker: first message must be init")
	}
	runner := core.NewRunner()
	runner.Config = first.Init.Config
	runner.Workers = first.Init.Workers
	runner.Checkpoint = first.Init.Checkpoint
	runner.Batch = first.Init.Batch
	runner.BatchWidth = first.Init.BatchWidth
	if err := enc.Encode(workerResponse{Ready: true}); err != nil {
		return fmt.Errorf("campaignd worker: writing ready: %w", err)
	}

	for {
		var req workerRequest
		if err := dec.Decode(&req); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("campaignd worker: reading unit: %w", err)
		}
		resp := workerResponse{}
		switch {
		case req.Unit == nil:
			resp.Err = "campaignd worker: expected a unit message"
		default:
			resp.Seq = req.Unit.Seq
			resp.Results = runner.RunAll(ctx, req.Unit.Cases)
		}
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("campaignd worker: writing results: %w", err)
		}
	}
}
