package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"

	"uavres/internal/core"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/obs"
	"uavres/internal/sim"
	"uavres/internal/spec"
	"uavres/internal/store"
)

// unitsPerProc oversubscribes the unit count relative to the worker
// pool so a shard that drew the slow prefix groups does not leave the
// other processes idle at the tail of the campaign.
const unitsPerProc = 4

// server is the campaign coordinator: it owns the result store, the
// worker pool configuration, and the one-at-a-time campaign slot.
type server struct {
	st      *store.Store
	outDir  string
	procs   int
	threads int
	quiet   bool
	clock   obs.Clock

	// reg is the daemon-lifetime registry (/metrics): store gauges plus
	// cross-campaign totals. Each campaign gets its own registry for the
	// /status source so ratios reset per run.
	reg       *obs.Registry
	campaigns *obs.Counter

	// spawn starts one protocol peer; tests swap in in-process workers,
	// the daemon uses startWorkerProc (re-exec this binary with -worker).
	spawn func(workerInit) (*workerProc, error)

	runMu sync.Mutex // serializes campaigns: one at a time

	mu  sync.Mutex
	cur *core.StatusSource // most recent campaign's status source
	seq int
}

func newServer(st *store.Store, outDir string, procs, threads int, quiet bool, clock obs.Clock) *server {
	reg := obs.NewRegistry()
	st.RegisterMetrics(reg)
	return &server{
		st: st, outDir: outDir, procs: procs, threads: threads,
		quiet: quiet, clock: clock,
		reg:       reg,
		campaigns: reg.Counter("campaignd_campaigns_total"),
		spawn:     startWorkerProc,
	}
}

// mux builds the HTTP surface: /run (POST a CampaignSpec, synchronous),
// /status (current/last campaign snapshot), /store/stats, plus the
// standard /metrics + pprof endpoints.
func (s *server) mux() *http.ServeMux {
	mux := obs.MetricsMux(s.reg)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		src := s.cur
		s.mu.Unlock()
		var st core.Status
		if src != nil {
			st = src.Snapshot()
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/store/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.st.Stats())
	})
	return mux
}

// runSummary is the synchronous /run response: what ran, what the store
// saved the campaign, and where the merged results landed.
type runSummary struct {
	Name          string  `json:"name,omitempty"`
	SpecHash      string  `json:"spec_hash"`
	Cases         int     `json:"cases"`
	CacheHits     int     `json:"cache_hits"`
	CacheMisses   int     `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	Units         int     `json:"units"`
	WorkerProcs   int     `json:"worker_procs"`
	WorkerThreads int     `json:"worker_threads"`
	Failures      int     `json:"failures"`
	ResultsPath   string  `json:"results_path"`
	WallSeconds   float64 `json:"wall_seconds"`
	StoreObjects  int     `json:"store_objects"`
	StoreBytes    int64   `json:"store_bytes"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a CampaignSpec JSON body", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs, err := spec.Parse(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.runMu.TryLock() {
		http.Error(w, "a campaign is already running", http.StatusConflict)
		return
	}
	defer s.runMu.Unlock()
	sum, err := s.runCampaign(cs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// runCampaign executes one spec: compile, fingerprint, partition
// against the store, fan the miss-set out to worker processes in
// prefix-coherent units, and stream the merged results (hits first,
// fresh as they land) into one well-formed results file.
func (s *server) runCampaign(cs spec.CampaignSpec) (runSummary, error) {
	start := s.clock()
	s.campaigns.Add(1)

	cases, err := cs.Compile(mission.Valencia())
	if err != nil {
		return runSummary{}, err
	}
	if len(cases) == 0 {
		return runSummary{}, errors.New("campaignd: spec selects no cases")
	}
	// Same override layering as cmd/campaign with default flags, so
	// fingerprints — and therefore store hits — agree across entry points.
	cfg := sim.DefaultConfig()
	cs.Overrides.Apply(&cfg)
	spec.AttachFingerprints(cases, cfg)

	// Partition against the store. Get already rejects corrupt or
	// foreign-fingerprint objects; the ID check guards against the
	// (astronomically unlikely) hash collision across case IDs.
	results := make([]core.CaseResult, len(cases))
	byID := make(map[string]int, len(cases))
	var hitIdx []int
	var miss []core.Case
	for i, c := range cases {
		byID[c.ID] = i
		if res, ok, err := s.st.Get(c.Hash); err == nil && ok && res.Case.ID == c.ID && res.Err == "" {
			results[i] = res
			hitIdx = append(hitIdx, i)
			continue
		}
		miss = append(miss, c)
	}

	// Per-campaign registry + status source: /status reports this run's
	// counters and cache ratio from zero.
	creg := obs.NewRegistry()
	creg.Counter("campaign_cache_hits_total").Add(int64(len(hitIdx)))
	creg.Counter("campaign_cache_misses_total").Add(int64(len(miss)))
	creg.Counter("campaign_cases_cached_total").Add(int64(len(hitIdx)))
	src := core.NewStatusSource(creg, core.StatusConfig{
		Total:      len(cases),
		SpecHash:   cs.Hash(),
		RNGPolicy:  rngPolicyName(cfg),
		RunnerMode: "batch",
		BatchWidth: core.DefaultBatchWidth,
		Workers:    s.procs * s.threads,
		Clock:      s.clock,
	})
	s.mu.Lock()
	s.cur = src
	s.seq++
	seq := s.seq
	s.mu.Unlock()

	// One results file per run, named by sequence + spec hash so a demo
	// can bit-compare it against a direct cmd/campaign run.
	path := filepath.Join(s.outDir, fmt.Sprintf("run-%03d-%s.json", seq, cs.Hash()))
	stream, err := core.NewResultsFileWriter(path)
	if err != nil {
		return runSummary{}, err
	}
	var streamErr error
	write := func(res core.CaseResult) {
		if err := stream.Write(res); err != nil && streamErr == nil {
			streamErr = err
		}
	}
	hdr := core.ResultsHeader{
		SpecHash:   cs.Hash(),
		RNGPolicy:  rngPolicyName(cfg),
		RunnerMode: "batch",
		BatchWidth: core.DefaultBatchWidth,
		Workers:    s.procs * s.threads,
	}
	if err := stream.WriteHeader(hdr); err != nil && streamErr == nil {
		streamErr = err
	}
	// Replayed hits are written with their full stored payloads — byte
	// for byte what a cold run would have streamed — then stripped from
	// the retained slice to bound resident memory.
	for _, i := range hitIdx {
		write(results[i])
		results[i].Result.Trajectory = nil
		results[i].Result.Diagnostics = nil
	}

	shards := core.ShardCases(miss, s.procs*unitsPerProc)
	units := make([]workerUnit, len(shards))
	for i, sh := range shards {
		units[i] = workerUnit{Seq: i, Cases: sh}
	}
	if !s.quiet {
		fmt.Printf("campaignd: run %d: %d cases, %d cache hits, %d to simulate in %d units over %d workers\n",
			seq, len(cases), len(hitIdx), len(miss), len(units), s.procs)
	}

	// deliver merges one unit's finished results under a single lock:
	// stream write, store put, campaign counters, payload strip.
	errsCounter := creg.Counter("campaign_case_errors_total")
	casesCounter := creg.Counter("campaign_cases_total")
	var deliverMu sync.Mutex
	deliver := func(batch []core.CaseResult) {
		deliverMu.Lock()
		defer deliverMu.Unlock()
		for _, res := range batch {
			write(res)
			if res.Err == "" && res.Case.Hash != "" {
				s.st.Store(res)
			}
			casesCounter.Add(1)
			if res.Err != "" {
				errsCounter.Add(1)
			} else if c := outcomeCounter(creg, res.Result.Outcome); c != nil {
				c.Add(1)
			}
			i, ok := byID[res.Case.ID]
			if !ok {
				if streamErr == nil {
					streamErr = fmt.Errorf("campaignd: worker returned unknown case %q", res.Case.ID)
				}
				continue
			}
			res.Result.Trajectory = nil
			res.Result.Diagnostics = nil
			results[i] = res
		}
	}

	if err := s.fanOut(workerInit{
		Config: cfg, Workers: s.threads, Checkpoint: true, Batch: true,
	}, units, deliver); err != nil {
		stream.Close()
		return runSummary{}, err
	}

	if err := stream.Close(); streamErr == nil {
		streamErr = err
	}
	if streamErr != nil {
		return runSummary{}, fmt.Errorf("campaignd: writing results: %w", streamErr)
	}
	if err := s.st.Err(); err != nil {
		// The campaign itself succeeded; a store persistence failure only
		// costs future hits. Report it without failing the run.
		fmt.Fprintf(os.Stderr, "campaignd: store persistence degraded: %v\n", err)
	}

	var failures int
	for _, res := range results {
		if res.Err != "" {
			failures++
		}
	}
	st := s.st.Stats()
	sum := runSummary{
		Name:          cs.Name,
		SpecHash:      cs.Hash(),
		Cases:         len(cases),
		CacheHits:     len(hitIdx),
		CacheMisses:   len(miss),
		Units:         len(units),
		WorkerProcs:   s.procs,
		WorkerThreads: s.threads,
		Failures:      failures,
		ResultsPath:   path,
		WallSeconds:   s.clock() - start,
		StoreObjects:  st.Objects,
		StoreBytes:    st.Bytes,
	}
	if len(cases) > 0 {
		sum.CacheHitRatio = float64(len(hitIdx)) / float64(len(cases))
	}
	if !s.quiet {
		fmt.Printf("campaignd: run %d done: %d/%d from cache (%.0f%%), %d failures, %.2fs → %s\n",
			seq, sum.CacheHits, sum.Cases, 100*sum.CacheHitRatio, failures, sum.WallSeconds, path)
	}
	return sum, nil
}

// fanOut drives the worker pool over the unit queue. Every unit is
// accounted for exactly once: finished units deliver their results, a
// failed worker's in-flight unit delivers per-case errors, and units no
// surviving worker could claim are drained into errors at the end. A
// total fan-out failure (no worker ever started) is the only hard error.
func (s *server) fanOut(init workerInit, units []workerUnit, deliver func([]core.CaseResult)) error {
	if len(units) == 0 {
		return nil
	}
	unitCh := make(chan workerUnit, len(units))
	for _, u := range units {
		unitCh <- u
	}
	close(unitCh)

	var wg sync.WaitGroup
	started := 0
	var startErr error
	for p := 0; p < s.procs; p++ {
		wp, err := s.spawn(init)
		if err != nil {
			if startErr == nil {
				startErr = err
			}
			continue
		}
		started++
		wg.Add(1)
		go func(wp *workerProc) {
			defer wg.Done()
			defer wp.close()
			for unit := range unitCh {
				batch, err := wp.do(unit)
				if err != nil {
					deliver(errResults(unit, err))
					return // the worker is presumed broken; stop feeding it
				}
				deliver(batch)
			}
		}(wp)
	}
	if started == 0 {
		return fmt.Errorf("campaignd: no worker process started: %w", startErr)
	}
	wg.Wait()
	// If every worker died early, the closed channel still holds units.
	for unit := range unitCh {
		deliver(errResults(unit, errors.New("no worker available")))
	}
	return nil
}

// errResults converts a unit the pool could not run into per-case error
// results, so the results file and failure count stay complete.
func errResults(u workerUnit, err error) []core.CaseResult {
	out := make([]core.CaseResult, len(u.Cases))
	for i, c := range u.Cases {
		out[i] = core.CaseResult{Case: c, Err: fmt.Sprintf("campaignd: unit %d: %v", u.Seq, err)}
	}
	return out
}

// workerProc is one protocol peer: a -worker subprocess, or an
// in-process loop in tests.
type workerProc struct {
	enc     *json.Encoder
	dec     *json.Decoder
	closeFn func()
}

// startWorkerProc launches one -worker subprocess (this binary
// re-executed) and completes the init/ready handshake.
func startWorkerProc(init workerInit) (*workerProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-worker")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	wp := &workerProc{
		enc: json.NewEncoder(stdin),
		dec: json.NewDecoder(stdout),
		closeFn: func() {
			stdin.Close()
			_ = cmd.Wait()
		},
	}
	if err := wp.handshake(init); err != nil {
		wp.close()
		return nil, err
	}
	return wp, nil
}

// handshake sends init and waits for the ready ack.
func (wp *workerProc) handshake(init workerInit) error {
	if err := wp.enc.Encode(workerRequest{Init: &init}); err != nil {
		return fmt.Errorf("campaignd: sending init: %w", err)
	}
	var ready workerResponse
	if err := wp.dec.Decode(&ready); err != nil {
		return fmt.Errorf("campaignd: waiting for ready: %w", err)
	}
	if !ready.Ready {
		return fmt.Errorf("campaignd: worker refused init: %s", ready.Err)
	}
	return nil
}

// do runs one unit through the worker, blocking until its results come
// back (one unit in flight per worker by design).
func (wp *workerProc) do(u workerUnit) ([]core.CaseResult, error) {
	if err := wp.enc.Encode(workerRequest{Unit: &u}); err != nil {
		return nil, err
	}
	var resp workerResponse
	if err := wp.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	if resp.Seq != u.Seq {
		return nil, fmt.Errorf("out-of-order response: got seq %d, want %d", resp.Seq, u.Seq)
	}
	return resp.Results, nil
}

func (wp *workerProc) close() {
	if wp.closeFn != nil {
		wp.closeFn()
	}
}

// outcomeCounter maps an outcome to its campaign counter (nil for the
// zero outcome of errored cases).
func outcomeCounter(reg *obs.Registry, o sim.Outcome) *obs.Counter {
	switch o {
	case sim.OutcomeCompleted:
		return reg.Counter("campaign_outcome_completed_total")
	case sim.OutcomeCrash:
		return reg.Counter("campaign_outcome_crash_total")
	case sim.OutcomeFailsafe:
		return reg.Counter("campaign_outcome_failsafe_total")
	case sim.OutcomeTimeout:
		return reg.Counter("campaign_outcome_timeout_total")
	}
	return nil
}

// rngPolicyName resolves the config's RNG policy to its canonical name.
func rngPolicyName(cfg sim.Config) string {
	pol, _ := mathx.ParseNormPolicy(cfg.RNGPolicy)
	return pol.String()
}
