package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"uavres/internal/core"
	"uavres/internal/obs"
	"uavres/internal/sim"
	"uavres/internal/spec"
	"uavres/internal/store"
)

// pipeWorker runs the real workerMain in-process over pipes, so the
// protocol is exercised end to end without re-exec'ing a binary (which
// under `go test` would be the test harness, not campaignd).
func pipeWorker(t *testing.T) *workerProc {
	t.Helper()
	toWorker, fromCoord := io.Pipe()
	toCoord, fromWorker := io.Pipe()
	done := make(chan error, 1)
	go func() { done <- workerMain(context.Background(), toWorker, fromWorker) }()
	return &workerProc{
		enc: json.NewEncoder(fromCoord),
		dec: json.NewDecoder(toCoord),
		closeFn: func() {
			fromCoord.Close()
			if err := <-done; err != nil {
				t.Errorf("workerMain: %v", err)
			}
		},
	}
}

// TestWorkerProtocol drives init → ready → unit → results → EOF against
// the real worker loop. The cases name a mission the scenario does not
// have, so results come back instantly as per-case errors — the
// protocol surface is identical to simulated results.
func TestWorkerProtocol(t *testing.T) {
	wp := pipeWorker(t)
	init := workerInit{Config: sim.DefaultConfig(), Workers: 1, Checkpoint: true, Batch: true}
	if err := wp.handshake(init); err != nil {
		t.Fatal(err)
	}
	unit := workerUnit{Seq: 3, Cases: []core.Case{
		{ID: "x1", MissionID: 99, Seed: 1},
		{ID: "x2", MissionID: 99, Seed: 2},
	}}
	results, err := wp.do(unit)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Case.ID != "x1" || results[0].Err == "" {
		t.Fatalf("unexpected results: %+v", results)
	}
	wp.close() // closes stdin; workerMain must exit cleanly on EOF
}

func TestWorkerRejectsUnitBeforeInit(t *testing.T) {
	toWorker, fromCoord := io.Pipe()
	_, fromWorker := io.Pipe()
	done := make(chan error, 1)
	go func() { done <- workerMain(context.Background(), toWorker, fromWorker) }()
	enc := json.NewEncoder(fromCoord)
	if err := enc.Encode(workerRequest{Unit: &workerUnit{Seq: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "init") {
		t.Fatalf("worker accepted a unit before init: %v", err)
	}
}

// scriptedWorker is a protocol peer that fabricates deterministic
// results instead of simulating, so coordinator tests run in
// milliseconds. The fabricated result is a pure function of the case,
// which makes warm-run bit-identity meaningful.
func scriptedWorker() *workerProc {
	toWorker, fromCoord := io.Pipe()
	toCoord, fromWorker := io.Pipe()
	go func() {
		dec := json.NewDecoder(toWorker)
		enc := json.NewEncoder(fromWorker)
		for {
			var req workerRequest
			if err := dec.Decode(&req); err != nil {
				return
			}
			if req.Unit == nil {
				continue
			}
			resp := workerResponse{Seq: req.Unit.Seq}
			for _, c := range req.Unit.Cases {
				resp.Results = append(resp.Results, fabricate(c))
			}
			if err := enc.Encode(resp); err != nil {
				return
			}
		}
	}()
	return &workerProc{
		enc:     json.NewEncoder(fromCoord),
		dec:     json.NewDecoder(toCoord),
		closeFn: func() { fromCoord.Close() },
	}
}

func fabricate(c core.Case) core.CaseResult {
	return core.CaseResult{
		Case: c,
		Result: sim.Result{
			MissionID:         c.MissionID,
			Injection:         c.Injection,
			Outcome:           sim.OutcomeCompleted,
			FlightDurationSec: float64(c.Seed) * 1.5,
			DistanceKm:        3.25,
			WaypointsReached:  4,
			Diagnostics:       &sim.Diagnostics{MaxTiltDeg: 12.5, GPSFusions: 100},
		},
	}
}

// scriptedServer builds a coordinator whose worker pool is in-process
// and whose handshake is skipped (scripted workers need no init).
func scriptedServer(t *testing.T) (*server, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := newServer(st, t.TempDir(), 2, 1, true, obs.Stopped())
	s.spawn = func(workerInit) (*workerProc, error) { return scriptedWorker(), nil }
	return s, st
}

const demoSpec = `{
 "version": 1,
 "name": "campaignd-test",
 "missions": [1, 2],
 "matrix": {"targets": ["gyro"], "primitives": ["freeze", "zeros"], "durations_sec": [2, 5]}
}`

// TestRunColdThenWarm is the acceptance shape: the first submission
// simulates everything, the second replays everything from the store,
// and the two results files hold bit-identical cases.
func TestRunColdThenWarm(t *testing.T) {
	s, st := scriptedServer(t)
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	post := func() runSummary {
		t.Helper()
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(demoSpec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /run: %s: %s", resp.Status, body)
		}
		var sum runSummary
		if err := json.Unmarshal(body, &sum); err != nil {
			t.Fatal(err)
		}
		return sum
	}

	cold := post()
	// 2 missions x (1 target x 2 primitives x 2 durations) + 2 gold = 10.
	if cold.Cases != 10 || cold.CacheMisses != 10 || cold.CacheHits != 0 {
		t.Fatalf("cold run: %+v", cold)
	}
	if cold.Failures != 0 {
		t.Fatalf("cold failures: %+v", cold)
	}
	if st.Stats().Objects != 10 {
		t.Fatalf("store holds %d objects after cold run, want 10", st.Stats().Objects)
	}

	warm := post()
	if warm.CacheHits != 10 || warm.CacheMisses != 0 || warm.CacheHitRatio != 1 {
		t.Fatalf("warm run: %+v", warm)
	}

	// Bit-identity: same cases, same results, replayed from the store.
	_, coldResults, err := core.LoadResultsFileWithHeader(cold.ResultsPath)
	if err != nil {
		t.Fatal(err)
	}
	_, warmResults, err := core.LoadResultsFileWithHeader(warm.ResultsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(coldResults) != 10 || len(warmResults) != 10 {
		t.Fatalf("results files hold %d/%d cases, want 10/10", len(coldResults), len(warmResults))
	}
	byID := map[string]core.CaseResult{}
	for _, cr := range warmResults {
		byID[cr.Case.ID] = cr
	}
	for _, cr := range coldResults {
		if !reflect.DeepEqual(cr, byID[cr.Case.ID]) {
			t.Errorf("case %s differs between cold and warm run", cr.Case.ID)
		}
	}

	// The status endpoint reflects the warm run's perfect hit ratio.
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status core.Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.CacheHitRatio != 1 || !status.Done || status.CasesTotal != 10 {
		t.Errorf("status after warm run: %+v", status)
	}

	// And the store endpoint reports the objects backing it.
	resp2, err := http.Get(ts.URL + "/store/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var stats store.Stats
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 10 {
		t.Errorf("store stats: %+v", stats)
	}
}

// TestOverlappingGridRunsOnlyComplement: a wider grid over a warmed
// store simulates exactly the new cells.
func TestOverlappingGridRunsOnlyComplement(t *testing.T) {
	s, _ := scriptedServer(t)
	first, err := s.runCampaign(mustParse(t, demoSpec))
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheMisses != 10 {
		t.Fatalf("first run: %+v", first)
	}
	// Same grid plus one extra duration: 2 missions x 2 primitives = 4
	// new cells; everything else replays.
	wider := strings.Replace(demoSpec, `"durations_sec": [2, 5]`, `"durations_sec": [2, 5, 10]`, 1)
	second, err := s.runCampaign(mustParse(t, wider))
	if err != nil {
		t.Fatal(err)
	}
	if second.Cases != 14 || second.CacheHits != 10 || second.CacheMisses != 4 {
		t.Fatalf("overlapping run did not simulate only the complement: %+v", second)
	}
}

// TestRunFailedWorkersProduceErrorResults: when no worker can run a
// unit, its cases land in the results file as errors — the campaign
// completes, accounts for every case, and caches nothing bogus.
func TestRunFailedWorkersProduceErrorResults(t *testing.T) {
	s, st := scriptedServer(t)
	s.spawn = func(workerInit) (*workerProc, error) {
		// A worker that dies before answering its first unit.
		toWorker, fromCoord := io.Pipe()
		toCoord, fromWorker := io.Pipe()
		go func() {
			dec := json.NewDecoder(toWorker)
			var req workerRequest
			_ = dec.Decode(&req)
			fromWorker.Close() // hang up instead of answering
		}()
		return &workerProc{
			enc:     json.NewEncoder(fromCoord),
			dec:     json.NewDecoder(toCoord),
			closeFn: func() { fromCoord.Close() },
		}, nil
	}
	sum, err := s.runCampaign(mustParse(t, demoSpec))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failures != 10 {
		t.Fatalf("want all 10 cases failed, got %+v", sum)
	}
	if st.Stats().Objects != 0 {
		t.Errorf("errored results were cached: %+v", st.Stats())
	}
	_, results, err := core.LoadResultsFileWithHeader(sum.ResultsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Errorf("results file holds %d cases, want 10 errored", len(results))
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	s, _ := scriptedServer(t)
	ts := httptest.NewServer(s.mux())
	defer ts.Close()
	for name, body := range map[string]string{
		"not json":        "{",
		"unknown field":   `{"version": 1, "bogus": true}`,
		"wrong version":   `{"version": 99}`,
		"unknown mission": `{"version": 1, "missions": [42]}`,
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s: accepted", name)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: %d, want 405", resp.StatusCode)
	}
}

func mustParse(t *testing.T, s string) spec.CampaignSpec {
	t.Helper()
	cs, err := spec.Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return cs
}
