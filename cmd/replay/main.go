// Command replay reads a binary flight log written by cmd/uavsim (or the
// library's flightlog package), prints a summary, and optionally exports
// CSV or an SVG figure — offline analysis of recorded flights, the same
// role the paper's platform's log review plays. It also loads the
// black-box dumps cmd/campaign writes for crash/violation cases.
//
// Usage:
//
//	replay -in flight.bin
//	replay -in flight.bin -csv flight.csv -svg flight.svg
//	replay -blackbox out/blackbox/m01-zeros-accel-s1.blackbox.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"uavres/internal/blackbox"
	"uavres/internal/flightlog"
	"uavres/internal/plot"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in       = flag.String("in", "", "binary flight log path")
		bboxPath = flag.String("blackbox", "", "black-box dump path (from campaign -blackbox-dir)")
		csvPath  = flag.String("csv", "", "export records as CSV")
		svgPath  = flag.String("svg", "", "export altitude/deviation figure as SVG")
	)
	flag.Parse()
	if *bboxPath != "" {
		return runBlackBox(*bboxPath, *svgPath)
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "replay: -in or -blackbox is required")
		flag.Usage()
		return 1
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		return 1
	}
	hdr, records, err := flightlog.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		return 1
	}

	fmt.Printf("flight log: mission %d, %q, %d records\n", hdr.MissionID, hdr.Label, len(records))
	if len(records) == 0 {
		return 0
	}

	var (
		maxAlt, maxDev, maxTilt float64
		innerViol, outerViol    int
		faultSamples            int
		dist                    float64
	)
	for i, r := range records {
		maxAlt = math.Max(maxAlt, -r.TrueZ)
		maxDev = math.Max(maxDev, r.DeviationM)
		maxTilt = math.Max(maxTilt, r.TiltDeg)
		if r.Flags&flightlog.FlagInnerViolation != 0 {
			innerViol++
		}
		if r.Flags&flightlog.FlagOuterViolation != 0 {
			outerViol++
		}
		if r.Flags&flightlog.FlagFaultActive != 0 {
			faultSamples++
		}
		if i > 0 {
			p := records[i-1]
			dx, dy, dz := r.TrueX-p.TrueX, r.TrueY-p.TrueY, r.TrueZ-p.TrueZ
			dist += math.Sqrt(dx*dx + dy*dy + dz*dz)
		}
	}
	span := records[len(records)-1].TimeSec - records[0].TimeSec
	fmt.Printf("  duration:         %.1f s\n", span)
	fmt.Printf("  distance (truth): %.3f km\n", dist/1000)
	fmt.Printf("  max altitude:     %.1f m\n", maxAlt)
	fmt.Printf("  max deviation:    %.1f m\n", maxDev)
	fmt.Printf("  max tilt:         %.1f deg\n", maxTilt)
	fmt.Printf("  violations:       inner=%d outer=%d\n", innerViol, outerViol)
	if faultSamples > 0 {
		fmt.Printf("  fault window:     %d samples flagged\n", faultSamples)
	}

	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		err = flightlog.WriteCSV(out, records)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		fmt.Printf("csv written to %s\n", *csvPath)
	}

	if *svgPath != "" {
		times := make([]float64, len(records))
		alts := make([]float64, len(records))
		devs := make([]float64, len(records))
		for i, r := range records {
			times[i] = r.TimeSec
			alts[i] = -r.TrueZ
			devs[i] = r.DeviationM
		}
		chart := plot.Chart{
			Title:  fmt.Sprintf("mission %d — %s", hdr.MissionID, hdr.Label),
			XLabel: "time (s)",
			YLabel: "meters",
			Series: []plot.Series{
				{Name: "altitude (m)", X: times, Y: alts},
				{Name: "deviation from route (m)", X: times, Y: devs},
			},
		}
		out, err := os.Create(*svgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		err = chart.WriteSVG(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		fmt.Printf("figure written to %s\n", *svgPath)
	}
	return 0
}

// runBlackBox loads a campaign black-box dump and prints the failure
// story: case identity, outcome, EKF aiding statistics, the event
// timeline, and the trajectory tail. An optional SVG plots the tail.
func runBlackBox(path, svgPath string) int {
	d, err := blackbox.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		return 1
	}
	fmt.Printf("black box: case %s (mission %d, seed %d)\n", d.CaseID, d.MissionID, d.Seed)
	if d.SpecHash != "" {
		fmt.Printf("  spec:             %s\n", d.SpecHash)
	}
	if d.Injection != nil {
		fmt.Printf("  injection:        %s at t=%s for %s\n",
			d.Injection.Label(), d.Injection.Start, d.Injection.Duration)
	}
	fmt.Printf("  outcome:          %s\n", d.Outcome)
	if d.CrashReason != "" {
		fmt.Printf("  crash reason:     %s\n", d.CrashReason)
	}
	if d.FailsafeCause != "" {
		fmt.Printf("  failsafe cause:   %s\n", d.FailsafeCause)
	}
	fmt.Printf("  flight duration:  %.1f s\n", d.FlightDurationSec)
	fmt.Printf("  distance:         %.3f km\n", d.DistanceKm)
	fmt.Printf("  violations:       inner=%d outer=%d\n", d.InnerViolations, d.OuterViolations)
	fmt.Printf("  waypoints:        %d\n", d.WaypointsReached)

	diag := d.Diagnostics
	if diag == nil {
		fmt.Println("  (no diagnostics block)")
		return 0
	}
	fmt.Printf("  ekf:              gps %d fused / %d rejected (max ratio %.2f), baro %d fused / %d rejected (max ratio %.2f), %d resets\n",
		diag.GPSFusions, diag.GPSGateRejects, diag.MaxGPSRatio,
		diag.BaroFusions, diag.BaroGateRejects, diag.MaxBaroRatio, diag.EKFResets)
	fmt.Printf("  redundancy:       %d sensor switches, %d mitigation engagements\n",
		diag.SensorSwitches, diag.MitigationEngagements)
	if diag.TraceDropped > 0 {
		fmt.Printf("  trace:            %d events retained, %d dropped from ring\n",
			len(diag.Trace), diag.TraceDropped)
	}
	for _, e := range diag.Trace {
		line := fmt.Sprintf("  t=%8.2f  %s", e.T, e.Kind)
		if e.Detail != "" {
			line += " " + e.Detail
		}
		if e.Value > 0 {
			line += fmt.Sprintf(" (%.2f)", e.Value)
		}
		fmt.Println(line)
	}
	tail := diag.TrajectoryTail
	fmt.Printf("  trajectory tail:  %d points\n", len(tail))
	for _, p := range tail {
		fmt.Printf("  t=%8.2f  true=(%.1f, %.1f, %.1f)  est=(%.1f, %.1f, %.1f)  tilt=%.1f deg\n",
			p.T, p.TruePos.X, p.TruePos.Y, p.TruePos.Z,
			p.EstPos.X, p.EstPos.Y, p.EstPos.Z, p.TiltDeg)
	}

	if svgPath != "" && len(tail) > 0 {
		times := make([]float64, len(tail))
		alts := make([]float64, len(tail))
		errs := make([]float64, len(tail))
		for i, p := range tail {
			times[i] = p.T
			alts[i] = -p.TruePos.Z
			errs[i] = p.TruePos.Dist(p.EstPos)
		}
		chart := plot.Chart{
			Title:  fmt.Sprintf("black box — %s (%s)", d.CaseID, d.Outcome),
			XLabel: "time (s)",
			YLabel: "meters",
			Series: []plot.Series{
				{Name: "altitude (m)", X: times, Y: alts},
				{Name: "estimation error (m)", X: times, Y: errs},
			},
		}
		out, err := os.Create(svgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		err = chart.WriteSVG(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		fmt.Printf("figure written to %s\n", svgPath)
	}
	return 0
}
