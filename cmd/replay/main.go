// Command replay reads a binary flight log written by cmd/uavsim (or the
// library's flightlog package), prints a summary, and optionally exports
// CSV or an SVG figure — offline analysis of recorded flights, the same
// role the paper's platform's log review plays.
//
// Usage:
//
//	replay -in flight.bin
//	replay -in flight.bin -csv flight.csv -svg flight.svg
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"uavres/internal/flightlog"
	"uavres/internal/plot"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in      = flag.String("in", "", "binary flight log path (required)")
		csvPath = flag.String("csv", "", "export records as CSV")
		svgPath = flag.String("svg", "", "export altitude/deviation figure as SVG")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "replay: -in is required")
		flag.Usage()
		return 1
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		return 1
	}
	hdr, records, err := flightlog.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		return 1
	}

	fmt.Printf("flight log: mission %d, %q, %d records\n", hdr.MissionID, hdr.Label, len(records))
	if len(records) == 0 {
		return 0
	}

	var (
		maxAlt, maxDev, maxTilt float64
		innerViol, outerViol    int
		faultSamples            int
		dist                    float64
	)
	for i, r := range records {
		maxAlt = math.Max(maxAlt, -r.TrueZ)
		maxDev = math.Max(maxDev, r.DeviationM)
		maxTilt = math.Max(maxTilt, r.TiltDeg)
		if r.Flags&flightlog.FlagInnerViolation != 0 {
			innerViol++
		}
		if r.Flags&flightlog.FlagOuterViolation != 0 {
			outerViol++
		}
		if r.Flags&flightlog.FlagFaultActive != 0 {
			faultSamples++
		}
		if i > 0 {
			p := records[i-1]
			dx, dy, dz := r.TrueX-p.TrueX, r.TrueY-p.TrueY, r.TrueZ-p.TrueZ
			dist += math.Sqrt(dx*dx + dy*dy + dz*dz)
		}
	}
	span := records[len(records)-1].TimeSec - records[0].TimeSec
	fmt.Printf("  duration:         %.1f s\n", span)
	fmt.Printf("  distance (truth): %.3f km\n", dist/1000)
	fmt.Printf("  max altitude:     %.1f m\n", maxAlt)
	fmt.Printf("  max deviation:    %.1f m\n", maxDev)
	fmt.Printf("  max tilt:         %.1f deg\n", maxTilt)
	fmt.Printf("  violations:       inner=%d outer=%d\n", innerViol, outerViol)
	if faultSamples > 0 {
		fmt.Printf("  fault window:     %d samples flagged\n", faultSamples)
	}

	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		err = flightlog.WriteCSV(out, records)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		fmt.Printf("csv written to %s\n", *csvPath)
	}

	if *svgPath != "" {
		times := make([]float64, len(records))
		alts := make([]float64, len(records))
		devs := make([]float64, len(records))
		for i, r := range records {
			times[i] = r.TimeSec
			alts[i] = -r.TrueZ
			devs[i] = r.DeviationM
		}
		chart := plot.Chart{
			Title:  fmt.Sprintf("mission %d — %s", hdr.MissionID, hdr.Label),
			XLabel: "time (s)",
			YLabel: "meters",
			Series: []plot.Series{
				{Name: "altitude (m)", X: times, Y: alts},
				{Name: "deviation from route (m)", X: times, Y: devs},
			},
		}
		out, err := os.Create(*svgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		err = chart.WriteSVG(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			return 1
		}
		fmt.Printf("figure written to %s\n", *svgPath)
	}
	return 0
}
