package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"uavres/internal/core"
	"uavres/internal/obs"
)

// statusStreamInterval paces the SSE stream: fast enough to feel live,
// slow enough that a dashboard costs nothing against the worker pool.
const statusStreamInterval = 500 * time.Millisecond

// addStatusHandlers layers the live campaign endpoints over the standard
// metrics mux: /status is a one-shot JSON snapshot, /status/stream an SSE
// feed that emits a snapshot every interval until the client disconnects
// (or immediately-then-forever-after the campaign finishes).
func addStatusHandlers(mux *http.ServeMux, src *core.StatusSource) {
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(src.Snapshot())
	})
	mux.HandleFunc("/status/stream", func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		ticker := time.NewTicker(statusStreamInterval)
		defer ticker.Stop()
		for {
			st := src.Snapshot()
			data, err := json.Marshal(st)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
			if st.Done {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
			}
		}
	})
}

// serveStatus binds addr and serves the status + metrics + pprof mux in
// the background. Binding happens here, synchronously, so a taken port
// fails the campaign before any case runs. The returned closer stops the
// listener.
func serveStatus(addr string, reg *obs.Registry, src *core.StatusSource) (func(), error) {
	mux := obs.MetricsMux(reg)
	addStatusHandlers(mux, src)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("campaign: -status-addr: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("campaign: status endpoint at http://%s/status\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}
