package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/obs"
)

// testCampaign builds a tiny runnable campaign: one short hop mission
// with a gold case and a few injected cases.
func testCampaign() (*core.Runner, []core.Case) {
	r := core.NewRunner()
	r.Missions = []mission.Mission{{
		ID: 1, Name: "hop", CruiseSpeedMS: 3.33, AltitudeM: 15,
		Drone:     mission.DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5},
		Start:     mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{{X: 0, Y: 80, Z: -15}},
	}}
	r.Workers = 2
	cases := []core.Case{{ID: "gold", MissionID: 1, Seed: 5}}
	for i, p := range []faultinject.Primitive{faultinject.Zeros, faultinject.MaxValue, faultinject.Freeze} {
		cases = append(cases, core.Case{
			ID: "f-" + p.String(), MissionID: 1, Seed: 5,
			Injection: &faultinject.Injection{
				Primitive: p, Target: faultinject.TargetGyro,
				Start: 10 * time.Second, Duration: 5 * time.Second,
				Seed: int64(i + 1),
			},
		})
	}
	return r, cases
}

// TestStatusEndpointMidRun drives the real handler stack while a
// campaign executes: /status must answer 200 with well-formed JSON
// mid-run, the SSE stream must deliver parseable snapshots, and the
// final snapshot must reconcile with the results.
func TestStatusEndpointMidRun(t *testing.T) {
	reg := obs.NewRegistry()
	runner, cases := testCampaign()
	runner.Obs = reg
	start := time.Now()
	clock := func() float64 { return time.Since(start).Seconds() }
	runner.Clock = clock

	src := core.NewStatusSource(reg, core.StatusConfig{
		Total:      len(cases),
		SpecHash:   "test-hash",
		RunnerMode: "batch",
		BatchWidth: core.DefaultBatchWidth,
		Workers:    2,
		Clock:      clock,
	})
	mux := obs.MetricsMux(reg)
	addStatusHandlers(mux, src)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	getStatus := func() core.Status {
		t.Helper()
		resp, err := http.Get(srv.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/status returned %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("/status content type %q", ct)
		}
		var st core.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("/status not well-formed JSON: %v", err)
		}
		return st
	}

	if st := getStatus(); st.CasesDone != 0 || st.Done {
		t.Errorf("pre-run status not idle: %+v", st)
	}

	// Poll /status from Progress — guaranteed mid-run, after >=1 case.
	var midChecked atomic.Bool
	runner.Progress = func(done, total int) {
		if midChecked.Swap(true) {
			return
		}
		st := getStatus()
		if st.SpecHash != "test-hash" || st.RunnerMode != "batch" || st.CasesTotal != len(cases) {
			t.Errorf("mid-run status lost static fields: %+v", st)
		}
	}

	results := runner.RunAll(context.Background(), cases)
	if !midChecked.Load() {
		t.Fatal("progress hook never fired; mid-run check did not happen")
	}

	st := getStatus()
	if st.CasesDone != int64(len(results)) || !st.Done {
		t.Errorf("final status done=%d/%v, want %d/true: %+v", st.CasesDone, st.Done, len(results), st)
	}
	if st.Completed+st.Crashed+st.Failsafed+st.TimedOut+st.Errors != int64(len(results)) {
		t.Errorf("outcome counts do not sum to case count: %+v", st)
	}

	// SSE stream: a finished campaign emits one final snapshot and closes.
	resp, err := http.Get(srv.URL + "/status/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/status/stream content type %q", ct)
	}
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	payload, ok := strings.CutPrefix(strings.TrimSpace(line), "data: ")
	if !ok {
		t.Fatalf("SSE line %q has no data: prefix", line)
	}
	var streamed core.Status
	if err := json.Unmarshal([]byte(payload), &streamed); err != nil {
		t.Fatalf("SSE payload not JSON: %v", err)
	}
	if !streamed.Done {
		t.Errorf("streamed snapshot of finished campaign not done: %+v", streamed)
	}

	// The metrics endpoint rides the same mux.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("/metrics returned %d", mresp.StatusCode)
	}
}
