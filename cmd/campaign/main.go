// Command campaign runs the paper's full fault-injection campaign — 21
// injection types x 10 Valencia missions x 4 durations plus 10 gold runs
// (850 cases) — and regenerates Tables I-IV. Results are also written as
// JSON for later re-rendering with cmd/tables.
//
// Usage:
//
//	campaign [-workers N] [-seed S] [-out results.json] [-subset mNN] [-checkpoint=false]
//	campaign [-cov-decim K] [-cov-settle SEC]
//	campaign [-metrics-out metrics.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	campaign -validate-metrics metrics.json
//	campaign -print-faultmodel
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"uavres/internal/core"
	"uavres/internal/ekf"
	"uavres/internal/faultinject"
	"uavres/internal/mission"
	"uavres/internal/obs"
	"uavres/internal/paperdata"
	"uavres/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "campaign base seed")
		out        = flag.String("out", "campaign_results.json", "JSON results output path (empty = skip)")
		subset     = flag.String("subset", "", "only run cases whose ID contains this substring (e.g. \"m04\" or \"gyro\")")
		checkpoint = flag.Bool("checkpoint", true, "share pre-injection prefixes between cases (checkpoint-and-fork; false = simulate every case straight through)")
		scope      = flag.String("scope", "all", "fault scope: all (paper assumption: every redundant IMU) | primary (unit 0 only — redundancy ablation)")
		covDecim   = flag.Int("cov-decim", ekf.DefaultConfig().CovarianceDecimation, "EKF covariance decimation factor k: propagate covariance every k-th predict (1 = exact per-step path; faulted flights keep the exact path from launch through the fault window + settle margin)")
		covSettle  = flag.Float64("cov-settle", sim.DefaultConfig().CovSettleSec, "seconds of full-rate covariance propagation kept after a fault window closes before decimation engages (only meaningful with -cov-decim > 1)")
		faultmodel = flag.Bool("print-faultmodel", false, "print Table I (the fault model) and exit")
		quiet      = flag.Bool("q", false, "suppress progress output")

		metricsOut      = flag.String("metrics-out", "", "write the campaign metrics snapshot as JSON to this path")
		validateMetrics = flag.String("validate-metrics", "", "validate a metrics snapshot JSON file and exit (CI schema gate)")
		cpuprofile      = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile      = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	if *faultmodel {
		fmt.Print(core.RenderFaultModel())
		return 0
	}
	if *validateMetrics != "" {
		data, err := os.ReadFile(*validateMetrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		if err := obs.ValidateSnapshotJSON(data); err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		fmt.Printf("campaign: %s is a valid metrics snapshot\n", *validateMetrics)
		return 0
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	cases := core.Plan(mission.Valencia(), *seed)
	switch *scope {
	case "all":
	case "primary":
		for i := range cases {
			if cases[i].Injection != nil {
				cases[i].Injection.Scope = faultinject.ScopePrimaryUnit
			}
		}
		fmt.Println("campaign: redundancy ablation — faults strike only IMU unit 0")
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown scope %q\n", *scope)
		return 1
	}
	if *subset != "" {
		var filtered []core.Case
		for _, c := range cases {
			if strings.Contains(c.ID, *subset) {
				filtered = append(filtered, c)
			}
		}
		cases = filtered
	}
	if len(cases) == 0 {
		fmt.Fprintln(os.Stderr, "campaign: no cases selected")
		return 1
	}
	fmt.Printf("campaign: %d cases, seed %d\n", len(cases), *seed)

	// The wall clock enters here and nowhere deeper: the runner and the
	// simulation below it only ever see this injected obs.Clock.
	start := time.Now()
	clock := func() float64 { return time.Since(start).Seconds() }

	if *covDecim < 1 {
		fmt.Fprintf(os.Stderr, "campaign: -cov-decim %d < 1\n", *covDecim)
		return 1
	}
	reg := obs.NewRegistry()
	runner := core.NewRunner()
	runner.Workers = *workers
	runner.Checkpoint = *checkpoint
	runner.Obs = reg
	runner.Clock = clock
	runner.Config.EKF.CovarianceDecimation = *covDecim
	runner.Config.CovSettleSec = *covSettle

	// Stream results to disk as cases finish: the runner strips the heavy
	// per-case payloads from its retained slice once the writer owns them,
	// bounding resident memory at the in-flight cases.
	var (
		stream    *core.ResultsFileWriter
		streamErr error
	)
	if *out != "" {
		var err error
		stream, err = core.NewResultsFileWriter(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: opening results stream: %v\n", err)
			return 1
		}
		runner.OnResult = func(res core.CaseResult) {
			if err := stream.Write(res); err != nil && streamErr == nil {
				streamErr = err
			}
		}
	}
	if !*quiet {
		runner.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				elapsed := clock()
				fmt.Printf("  %4d/%d (%.0f%%, %.1fs elapsed, ~%.0fs left)\n",
					done, total, 100*float64(done)/float64(total), elapsed,
					elapsed/float64(done)*float64(total-done))
			}
		}
	}

	results := runner.RunAll(context.Background(), cases)

	var failures int
	for _, r := range results {
		if r.Err != "" {
			failures++
			fmt.Fprintf(os.Stderr, "campaign: case %s failed: %s\n", r.Case.ID, r.Err)
		}
	}

	fmt.Println()
	fmt.Println(core.RenderTableII(results))
	fmt.Println(core.RenderTableIII(results))
	fmt.Println(core.RenderTableIV(results))
	if *subset == "" && *scope == "all" {
		// Shape comparison is only meaningful on the paper's setup.
		fmt.Println(paperdata.Render(paperdata.Compare(results)))
	}

	if stream != nil {
		if err := stream.Close(); streamErr == nil {
			streamErr = err
		}
		if streamErr != nil {
			fmt.Fprintf(os.Stderr, "campaign: saving results: %v\n", streamErr)
			return 1
		}
		fmt.Printf("results written to %s\n", *out)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		werr := reg.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "campaign: writing metrics: %v\n", werr)
			return 1
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		runtime.GC() // get up-to-date heap statistics
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "campaign: writing heap profile: %v\n", werr)
			return 1
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}
