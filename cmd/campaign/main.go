// Command campaign compiles a declarative campaign spec and executes it
// on the shared engine. The default spec is the paper's full
// fault-injection campaign — 21 injection types x 10 Valencia missions x
// 4 durations plus 10 gold runs (850 cases) — and regenerates Tables
// I-IV. Results stream to JSON as cases finish, each stamped with a
// content hash, so an interrupted or partially re-configured campaign
// resumes with -resume by executing only the missing or invalidated
// cases.
//
// Usage:
//
//	campaign [-workers N] [-seed S] [-out results.json] [-checkpoint=false]
//	campaign -spec examples/specs/paper-850.json
//	campaign -select mission=4,target=gyro -select "id=m07-*freeze*"
//	campaign -resume -out results.json
//	campaign -store out/store
//	campaign -validate-spec examples/specs/paper-850.json
//	campaign -print-spec
//	campaign [-cov-decim K] [-cov-settle SEC] [-scope all|primary]
//	campaign [-rng polar|ziggurat] [-batch=false] [-batch-width N]
//	campaign -compare-results a.json,b.json
//	campaign [-metrics-out metrics.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	campaign -validate-metrics metrics.json
//	campaign [-trace-out trace.json] [-status-addr :8080] [-blackbox-dir out/blackbox]
//	campaign -validate-trace trace.json
//	campaign -print-faultmodel
//
// With -store, fingerprint-stored cases replay from the shared
// content-addressed result store (the same store campaignd serves)
// instead of simulating; -resume is the results-file special case of
// the same mechanism. The historical -subset alias was removed; use
// -select "id=*SUBSTR*".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"uavres/internal/blackbox"
	"uavres/internal/core"
	"uavres/internal/ekf"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/obs"
	"uavres/internal/paperdata"
	"uavres/internal/sim"
	"uavres/internal/spec"
	"uavres/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "campaign base seed (overrides the spec's seed when set explicitly)")
		out        = flag.String("out", "campaign_results.json", "JSON results output path (empty = skip)")
		specPath   = flag.String("spec", "", "campaign spec JSON path (empty = the built-in paper-850 spec)")
		subset     = flag.String("subset", "", "REMOVED: use -select \"id=*SUBSTR*\"")
		storeDir   = flag.String("store", "", "content-addressed result store directory: fingerprint-stored cases return as cache hits, fresh results are stored back (shared with campaignd)")
		resume     = flag.Bool("resume", false, "load the -out results file and run only the missing, stale, or errored cases")
		checkpoint = flag.Bool("checkpoint", true, "share pre-injection prefixes between cases (checkpoint-and-fork; false = simulate every case straight through)")
		scope      = flag.String("scope", "all", "fault scope: all (paper assumption: every redundant IMU) | primary (unit 0 only — redundancy ablation)")
		covDecim   = flag.Int("cov-decim", ekf.DefaultConfig().CovarianceDecimation, "EKF covariance decimation factor k: propagate covariance every k-th predict (1 = exact per-step path; faulted flights keep the exact path from launch through the fault window + settle margin)")
		covSettle  = flag.Float64("cov-settle", sim.DefaultConfig().CovSettleSec, "seconds of full-rate covariance propagation kept after a fault window closes before decimation engages (only meaningful with -cov-decim > 1)")
		rngPolicy  = flag.String("rng", "", "environment RNG policy: polar (the default sampler) | ziggurat (overrides the spec's rng_policy when set explicitly; the injector stream stays polar either way)")
		batch      = flag.Bool("batch", true, "step each checkpoint group's forks in lockstep batches (false = one scalar fork per case)")
		batchWidth = flag.Int("batch-width", 0, "max forks per lockstep batch (0 = the built-in default)")
		faultmodel = flag.Bool("print-faultmodel", false, "print Table I (the fault model) and exit")
		printSpec  = flag.Bool("print-spec", false, "print the effective campaign spec as JSON and exit")
		quiet      = flag.Bool("q", false, "suppress progress output")

		compareResults  = flag.String("compare-results", "", "compare two results files (\"a.json,b.json\") case-by-case for bit-identical results and exit (CI equivalence gate)")
		validateSpec    = flag.String("validate-spec", "", "validate a campaign spec JSON file, print its case count, and exit (CI schema gate)")
		metricsOut      = flag.String("metrics-out", "", "write the campaign metrics snapshot as JSON to this path")
		validateMetrics = flag.String("validate-metrics", "", "validate a metrics snapshot JSON file and exit (CI schema gate)")
		cpuprofile      = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile      = flag.String("memprofile", "", "write a heap profile to this path")
		traceOut        = flag.String("trace-out", "", "write the campaign span tree as Chrome/Perfetto trace-event JSON to this path")
		validateTrace   = flag.String("validate-trace", "", "validate a trace-event JSON file and exit (CI schema gate)")
		statusAddr      = flag.String("status-addr", "", "serve live status (/status JSON + /status/stream SSE), /metrics, and pprof on this address while the campaign runs")
		blackboxDir     = flag.String("blackbox-dir", "", "write a black-box dump per crash/violation case into this directory (load with replay -blackbox)")
	)
	var selectors []spec.Selector
	flag.Func("select", "case selector (repeatable, OR across flags): key=value terms ANDed within one flag — id (exact or glob), mission, target, primitive, duration, start, gold, airframe", func(expr string) error {
		sel, err := spec.ParseSelector(expr)
		if err != nil {
			return err
		}
		selectors = append(selectors, sel)
		return nil
	})
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *subset != "" || explicit["subset"] {
		fmt.Fprintln(os.Stderr, "campaign: -subset was removed; use -select \"id=*SUBSTR*\"")
		return 1
	}
	// -resume replays the -out file; with no file there is nothing to
	// resume from. Fail before any compile or output prep happens.
	if *resume && *out == "" {
		fmt.Fprintln(os.Stderr, "campaign: -resume needs -out to name the results file")
		return 1
	}

	if *faultmodel {
		fmt.Print(core.RenderFaultModel())
		return 0
	}
	if *compareResults != "" {
		return compareResultsFiles(*compareResults)
	}
	if *validateSpec != "" {
		s, err := spec.Load(*validateSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		cases, err := s.Compile(mission.Valencia())
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		fmt.Printf("campaign: %s is valid: %s, %d cases\n", *validateSpec, s, len(cases))
		return 0
	}
	if *validateMetrics != "" {
		data, err := os.ReadFile(*validateMetrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		if err := obs.ValidateSnapshotJSON(data); err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		fmt.Printf("campaign: %s is a valid metrics snapshot\n", *validateMetrics)
		return 0
	}
	if *validateTrace != "" {
		data, err := os.ReadFile(*validateTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		if err := obs.ValidateTraceEventJSON(data); err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		fmt.Printf("campaign: %s is a valid trace-event document\n", *validateTrace)
		return 0
	}

	// Output destinations are prepared before any case runs: a campaign
	// must fail on an unwritable path now, not after hours of simulation.
	for _, o := range []struct{ flag, path string }{
		{"-out", *out},
		{"-metrics-out", *metricsOut},
		{"-trace-out", *traceOut},
		{"-cpuprofile", *cpuprofile},
		{"-memprofile", *memprofile},
	} {
		if err := ensureParentDir(o.flag, o.path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *blackboxDir != "" {
		if err := os.MkdirAll(*blackboxDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: -blackbox-dir: %v\n", err)
			return 1
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// Assemble the effective spec: file or built-in, CLI-adjusted.
	var s spec.CampaignSpec
	if *specPath != "" {
		var err error
		if s, err = spec.Load(*specPath); err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		if explicit["seed"] {
			s.Seed = *seed
		}
	} else {
		s = spec.Paper(*seed)
	}
	if explicit["scope"] || s.Matrix.Scope == "" {
		s.Matrix.Scope = *scope
	}

	if *printSpec {
		s2 := s
		s2.Select = append(append([]spec.Selector{}, s.Select...), selectors...)
		data, err := json.MarshalIndent(s2, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		fmt.Println(string(data))
		return 0
	}

	cases, err := s.Compile(mission.Valencia())
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		return 1
	}
	cases = spec.ApplySelectors(cases, selectors)
	if len(cases) == 0 {
		fmt.Fprintln(os.Stderr, "campaign: no cases selected")
		return 1
	}
	ablation := s.Matrix.Scope != "" && s.Matrix.Scope != "all"
	if ablation {
		fmt.Println("campaign: redundancy ablation — faults strike only IMU unit 0")
	}

	// The wall clock enters here and nowhere deeper: the runner and the
	// simulation below it only ever see this injected obs.Clock.
	start := time.Now()
	clock := func() float64 { return time.Since(start).Seconds() }

	if *covDecim < 1 {
		fmt.Fprintf(os.Stderr, "campaign: -cov-decim %d < 1\n", *covDecim)
		return 1
	}
	if _, err := mathx.ParseNormPolicy(*rngPolicy); err != nil {
		fmt.Fprintf(os.Stderr, "campaign: -rng: %v\n", err)
		return 1
	}
	reg := obs.NewRegistry()
	runner := core.NewRunner()
	runner.Workers = *workers
	runner.Checkpoint = *checkpoint
	runner.Batch = *batch
	runner.BatchWidth = *batchWidth
	runner.Obs = reg
	runner.Clock = clock
	// Config overrides layer: spec first, explicit CLI flags last.
	s.Overrides.Apply(&runner.Config)
	if explicit["cov-decim"] || s.Overrides.CovDecimation == nil {
		runner.Config.EKF.CovarianceDecimation = *covDecim
	}
	if explicit["cov-settle"] || s.Overrides.CovSettleSec == nil {
		runner.Config.CovSettleSec = *covSettle
	}
	if explicit["rng"] || s.Overrides.RNGPolicy == nil {
		runner.Config.RNGPolicy = *rngPolicy
	}

	// Every case is stamped with its content hash under the final
	// effective config — the cache key -resume and -store compare.
	spec.AttachFingerprints(cases, runner.Config)

	// Content-addressed result store: fingerprint-stored cases return as
	// cache hits without simulating; fresh results are stored back. The
	// store's gauges land in the same registry, so -metrics-out snapshots
	// carry object/byte counts alongside the hit/miss counters.
	var resultStore *store.Store
	if *storeDir != "" {
		var err error
		resultStore, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		defer resultStore.Close()
		resultStore.RegisterMetrics(reg)
		runner.Cache = resultStore
	}

	// Resume: split the compiled plan against the prior results file.
	// (The -resume/-out combination was validated right after flag
	// parsing, before any compile work.)
	var reused []core.CaseResult
	if *resume {
		prior, truncated, err := core.LoadPartialResultsFile(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		plan := core.PlanResume(cases, prior)
		reused = plan.Reused
		note := ""
		if truncated {
			note = " (file was truncated mid-write)"
		}
		fmt.Printf("campaign: resume: %d cases cached, %d stale, %d errored, %d to run%s\n",
			len(plan.Reused), plan.Stale, plan.Errored, len(plan.Run), note)
		cases = plan.Run
	}
	fmt.Printf("campaign: %s: %d cases to run, seed %d\n", s, len(cases), s.Seed)
	hdr := resultsHeader(s, runner)

	// Span tracer: one campaign root, the runner fills in the stage /
	// prefix / batch / case tree. Cache hits from -resume become closed
	// cache-hit case spans so the span count still matches the results.
	var (
		tracer    *obs.Tracer
		traceRoot obs.SpanID
	)
	if *traceOut != "" {
		tracer = obs.NewTracer(clock, 2*(len(cases)+len(reused))+64)
		traceRoot = tracer.Start("campaign", 0,
			obs.StrAttr("spec", hdr.SpecHash),
			obs.StrAttr("rng", hdr.RNGPolicy),
			obs.StrAttr("mode", hdr.RunnerMode),
			obs.NumAttr("batch_width", float64(hdr.BatchWidth)),
			obs.NumAttr("cases", float64(len(cases)+len(reused))))
		core.MarkCachedCases(tracer, traceRoot, reused)
		runner.Trace = tracer
		runner.TraceRoot = traceRoot
	}

	// Live status endpoint: snapshot + SSE over the same registry the
	// runner updates, plus /metrics and pprof. Binds (and fails) now.
	if *statusAddr != "" {
		effWorkers := *workers
		if effWorkers <= 0 {
			effWorkers = runtime.GOMAXPROCS(0)
		}
		src := core.NewStatusSource(reg, core.StatusConfig{
			Total:      len(cases) + len(reused),
			SpecHash:   hdr.SpecHash,
			RNGPolicy:  hdr.RNGPolicy,
			RunnerMode: hdr.RunnerMode,
			BatchWidth: hdr.BatchWidth,
			Workers:    effWorkers,
			Clock:      clock,
		})
		src.AddCached(len(reused))
		closeStatus, err := serveStatus(*statusAddr, reg, src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer closeStatus()
	}

	// Stream results to disk as cases finish: the runner strips the heavy
	// per-case payloads from its retained slice once the writer owns them,
	// bounding resident memory at the in-flight cases. On resume the
	// reused results are re-written first so the file stays complete.
	// The black-box dumper shares the same OnResult hook — it needs the
	// full Diagnostics block, which only exists before the strip.
	var (
		stream    *core.ResultsFileWriter
		streamErr error
		bboxErr   error
		bboxCount int
	)
	if *out != "" {
		stream, err = core.NewResultsFileWriter(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: opening results stream: %v\n", err)
			return 1
		}
		if err := stream.WriteHeader(hdr); err != nil && streamErr == nil {
			streamErr = err
		}
		for _, cr := range reused {
			if err := stream.Write(cr); err != nil && streamErr == nil {
				streamErr = err
			}
		}
	}
	if stream != nil || *blackboxDir != "" {
		runner.OnResult = func(res core.CaseResult) {
			if *blackboxDir != "" && blackbox.ShouldDump(res) {
				if _, err := blackbox.Write(*blackboxDir, blackbox.FromCase(res, hdr.SpecHash)); err != nil {
					if bboxErr == nil {
						bboxErr = err
					}
				} else {
					bboxCount++
				}
			}
			if stream != nil {
				if err := stream.Write(res); err != nil && streamErr == nil {
					streamErr = err
				}
			}
		}
	}
	if !*quiet {
		runner.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				elapsed := clock()
				fmt.Printf("  %4d/%d (%.0f%%, %.1fs elapsed, ~%.0fs left)\n",
					done, total, 100*float64(done)/float64(total), elapsed,
					elapsed/float64(done)*float64(total-done))
			}
		}
	}

	// Ctrl-C stops scheduling new cases; whatever finished is already on
	// disk, so the very same invocation plus -resume picks up the rest.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results := runner.RunAll(ctx, cases)
	results = append(reused, results...)

	var failures int
	for _, r := range results {
		if r.Err != "" {
			failures++
			fmt.Fprintf(os.Stderr, "campaign: case %s failed: %s\n", r.Case.ID, r.Err)
		}
	}

	if resultStore != nil {
		st := resultStore.Stats()
		fmt.Printf("campaign: store %s: %d hits, %d misses, %d stored (%d objects, %d bytes)\n",
			*storeDir, st.Hits, st.Misses, st.Puts, st.Objects, st.Bytes)
		if err := resultStore.Err(); err != nil {
			// Lost puts only cost future cache hits; the campaign's own
			// results are intact, so report without failing the run.
			fmt.Fprintf(os.Stderr, "campaign: store persistence degraded: %v\n", err)
		}
	}

	fmt.Println()
	fmt.Println(core.RenderTableII(results))
	fmt.Println(core.RenderTableIII(results))
	fmt.Println(core.RenderTableIV(results))
	if multiAirframe(results) {
		fmt.Println(core.RenderAirframeTable(results))
	}
	if *specPath == "" && len(selectors) == 0 && !ablation {
		// Shape comparison is only meaningful on the paper's full setup.
		fmt.Println(paperdata.Render(paperdata.Compare(results)))
	}

	if stream != nil {
		if err := stream.Close(); streamErr == nil {
			streamErr = err
		}
		if streamErr != nil {
			fmt.Fprintf(os.Stderr, "campaign: saving results: %v\n", streamErr)
			return 1
		}
		fmt.Printf("results written to %s\n", *out)
	}
	if *blackboxDir != "" {
		if bboxErr != nil {
			fmt.Fprintf(os.Stderr, "campaign: writing black boxes: %v\n", bboxErr)
			return 1
		}
		fmt.Printf("%d black box(es) written to %s\n", bboxCount, *blackboxDir)
	}
	if tracer != nil {
		tracer.End(traceRoot)
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		werr := tracer.WriteTraceEvents(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "campaign: writing trace: %v\n", werr)
			return 1
		}
		fmt.Printf("trace written to %s (%d spans, %d dropped)\n", *traceOut, tracer.Len(), tracer.Dropped())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		werr := reg.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "campaign: writing metrics: %v\n", werr)
			return 1
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		runtime.GC() // get up-to-date heap statistics
		werr := pprof.WriteHeapProfile(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "campaign: writing heap profile: %v\n", werr)
			return 1
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// ensureParentDir creates the parent directory of an output path so a
// campaign fails on an unwritable destination before it runs, not when
// it tries to save results hours later.
func ensureParentDir(flagName, path string) error {
	if path == "" {
		return nil
	}
	dir := filepath.Dir(path)
	if dir == "." || dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: %s: creating parent directory: %w", flagName, err)
	}
	return nil
}

// resultsHeader captures how this run was configured — the metadata the
// results file leads with so downstream comparisons never cross execution
// modes silently.
func resultsHeader(s spec.CampaignSpec, r *core.Runner) core.ResultsHeader {
	pol, _ := mathx.ParseNormPolicy(r.Config.RNGPolicy)
	mode, width := "scalar", 0
	if r.Batch {
		mode = "batch"
		width = r.BatchWidth
		if width <= 0 {
			width = core.DefaultBatchWidth
		}
	}
	return core.ResultsHeader{
		SpecHash:   s.Hash(),
		RNGPolicy:  pol.String(),
		RunnerMode: mode,
		BatchWidth: width,
		Workers:    r.Workers,
	}
}

// compareResultsFiles loads two results files ("a.json,b.json"), pairs
// cases by ID, and requires bit-identical results. This is the
// batch-vs-scalar equivalence gate ci.sh runs; headers are printed but
// allowed to differ — comparing across runner modes is the point.
func compareResultsFiles(pair string) int {
	parts := strings.Split(pair, ",")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fmt.Fprintln(os.Stderr, "campaign: -compare-results wants two comma-separated paths: a.json,b.json")
		return 1
	}
	describe := func(h *core.ResultsHeader) string {
		if h == nil {
			return "no header"
		}
		return fmt.Sprintf("mode=%s width=%d rng=%s", h.RunnerMode, h.BatchWidth, h.RNGPolicy)
	}
	ha, ra, err := core.LoadResultsFileWithHeader(parts[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		return 1
	}
	hb, rb, err := core.LoadResultsFileWithHeader(parts[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		return 1
	}
	fmt.Printf("campaign: comparing %s (%s) vs %s (%s)\n",
		parts[0], describe(ha), parts[1], describe(hb))

	inA := make(map[string]bool, len(ra))
	byID := make(map[string]core.CaseResult, len(rb))
	for _, cr := range rb {
		byID[cr.Case.ID] = cr
	}
	var diffs int
	for _, a := range ra {
		inA[a.Case.ID] = true
		b, ok := byID[a.Case.ID]
		switch {
		case !ok:
			diffs++
			fmt.Fprintf(os.Stderr, "campaign: case %s only in %s\n", a.Case.ID, parts[0])
		case a.Err != b.Err:
			diffs++
			fmt.Fprintf(os.Stderr, "campaign: case %s: err %q vs %q\n", a.Case.ID, a.Err, b.Err)
		case !reflect.DeepEqual(a.Result, b.Result):
			diffs++
			fmt.Fprintf(os.Stderr, "campaign: case %s: results differ:\n  %s: %+v\n  %s: %+v\n",
				a.Case.ID, parts[0], a.Result, parts[1], b.Result)
		}
	}
	for _, b := range rb {
		if !inA[b.Case.ID] {
			diffs++
			fmt.Fprintf(os.Stderr, "campaign: case %s only in %s\n", b.Case.ID, parts[1])
		}
	}
	if diffs > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d case(s) differ\n", diffs)
		return 1
	}
	fmt.Printf("campaign: %d cases bit-identical\n", len(ra))
	return 0
}

// multiAirframe reports whether the results span more than one rotor
// layout — only then is the redundancy table worth printing unasked.
func multiAirframe(results []core.CaseResult) bool {
	seen := map[string]bool{}
	for _, cr := range results {
		seen[cr.Case.Airframe] = true
	}
	return len(seen) > 1
}
