// Command trackerd runs the U-space tracking service: a telemetry broker
// plus a tracker that consumes position and bubble reports from every
// connected vehicle, maintains the airspace picture, and logs separation
// conflicts — the standalone counterpart of the tracking system in the
// paper's platform (Fig. 1).
//
// Usage:
//
//	trackerd -addr 127.0.0.1:14550 [-interval 5s] [-metrics-addr 127.0.0.1:9100]
//
// With -metrics-addr set, an HTTP server exposes Prometheus-text metrics
// at /metrics (broker counters, tracker gauges, uptime) and the standard
// Go profiling endpoints under /debug/pprof/.
//
// Vehicles publish frames to the same address (see examples/bubblemonitor
// for an end-to-end wiring).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uavres/internal/obs"
	"uavres/internal/telemetry"
	"uavres/internal/uspace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:14550", "broker listen address")
		interval    = flag.Duration("interval", 5*time.Second, "airspace summary print interval")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
	)
	flag.Parse()

	broker, err := telemetry.NewBroker(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trackerd:", err)
		return 1
	}
	defer broker.Close()
	fmt.Printf("trackerd: broker listening on %s\n", broker.Addr())

	tracker := uspace.NewTracker()

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		broker.RegisterMetrics(reg)
		reg.GaugeFunc("uspace_drones_tracked", func() float64 { return float64(len(tracker.Drones())) })
		reg.GaugeFunc("uspace_conflicts_total", func() float64 { return float64(len(tracker.Conflicts())) })
		startedAt := time.Now()
		reg.GaugeFunc("trackerd_uptime_seconds", func() float64 { return time.Since(startedAt).Seconds() })

		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trackerd:", err)
			return 1
		}
		defer ln.Close()
		srv := &http.Server{Handler: obs.MetricsMux(reg)}
		go func() { _ = srv.Serve(ln) }()
		fmt.Printf("trackerd: metrics on http://%s/metrics, profiles on /debug/pprof/\n", ln.Addr())
	}

	sub, err := telemetry.NewSubscriber(broker.Addr())
	if err != nil {
		fmt.Fprintln(os.Stderr, "trackerd:", err)
		return 1
	}
	defer sub.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = uspace.Pump(sub, tracker)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	for {
		select {
		case <-ticker.C:
			fmt.Print(tracker.Summary())
			st := broker.Stats()
			fmt.Printf("  broker: in=%d out=%d dropped=%d subs=%d pubs=%d\n",
				st.FramesIn, st.FramesOut, st.Dropped, st.Subscribers, st.Publishers)
		case <-sig:
			fmt.Println("trackerd: shutting down")
			broker.Close()
			<-done
			return 0
		case <-done:
			return 0
		}
	}
}
