// Command uavsim flies one Valencia mission, optionally under an IMU
// fault, and reports the paper's metrics for that flight. It can also
// write the trajectory as a flight log (binary) and CSV — the data behind
// the paper's Figures 3-5.
//
// Usage:
//
//	uavsim -mission 10 -fault acc:fixed -dur 30s            # Fig. 3 setup
//	uavsim -mission 5 -fault gyro:random -dur 30s           # Fig. 4 setup
//	uavsim -mission 5 -fault imu:random -dur 30s            # Fig. 5 setup
//	uavsim -mission 4                                       # gold run
//	uavsim -mission 4 -csv flight.csv -log flight.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uavres/internal/bubble"
	"uavres/internal/faultinject"
	"uavres/internal/flightlog"
	"uavres/internal/mission"
	"uavres/internal/plot"
	"uavres/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		missionID = flag.Int("mission", 1, "Valencia mission number (1-10)")
		faultSpec = flag.String("fault", "", "fault as target:primitive (e.g. gyro:freeze, acc:zeros, imu:random); empty = gold run")
		dur       = flag.Duration("dur", 10*time.Second, "injection duration (paper: 2s/5s/10s/30s)")
		start     = flag.Duration("start", 90*time.Second, "injection start after takeoff")
		seed      = flag.Int64("seed", 1, "simulation seed")
		csvPath   = flag.String("csv", "", "write trajectory CSV to this path")
		logPath   = flag.String("log", "", "write binary flight log to this path")
		svgPath   = flag.String("svg", "", "write a paper-style trajectory figure (SVG) to this path")
	)
	flag.Parse()

	var m mission.Mission
	found := false
	for _, cand := range mission.Valencia() {
		if cand.ID == *missionID {
			m = cand
			found = true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "uavsim: unknown mission %d (valid: 1-10)\n", *missionID)
		return 1
	}

	var inj *faultinject.Injection
	if *faultSpec != "" {
		parts := strings.SplitN(*faultSpec, ":", 2)
		if len(parts) != 2 {
			fmt.Fprintf(os.Stderr, "uavsim: fault must be target:primitive, got %q\n", *faultSpec)
			return 1
		}
		target, err := faultinject.ParseTarget(parts[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "uavsim:", err)
			return 1
		}
		prim, err := faultinject.ParsePrimitive(parts[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "uavsim:", err)
			return 1
		}
		inj = &faultinject.Injection{
			Primitive: prim, Target: target,
			Start: *start, Duration: *dur, Seed: *seed + 1,
		}
	}

	cfg := sim.DefaultConfig()
	cfg.Seed = *seed
	cfg.RecordTrajectory = *csvPath != "" || *logPath != "" || *svgPath != ""

	label := "Gold Run"
	if inj != nil {
		label = inj.Label()
	}
	fmt.Printf("mission %d (%s), drone %s @ %.1f km/h, fault: %s\n",
		m.ID, m.Name, m.Drone.Name, m.CruiseSpeedMS*3.6, label)

	res, err := sim.Run(cfg, m, inj, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uavsim:", err)
		return 1
	}

	fmt.Printf("outcome:            %s", res.Outcome)
	switch {
	case res.CrashReason != "":
		fmt.Printf(" (%s)", res.CrashReason)
	case res.FailsafeCause != "":
		fmt.Printf(" (%s)", res.FailsafeCause)
	}
	fmt.Println()
	fmt.Printf("flight duration:    %.2f s\n", res.FlightDurationSec)
	fmt.Printf("distance traveled:  %.3f km (EKF-estimated)\n", res.DistanceKm)
	fmt.Printf("bubble violations:  inner=%d outer=%d\n", res.InnerViolations, res.OuterViolations)
	fmt.Printf("waypoints reached:  %d/%d\n", res.WaypointsReached, len(m.Waypoints))

	if cfg.RecordTrajectory {
		if err := writeOutputs(*csvPath, *logPath, m, label, inj, res); err != nil {
			fmt.Fprintln(os.Stderr, "uavsim:", err)
			return 1
		}
		if *svgPath != "" {
			faultStart := 0.0
			if inj != nil {
				faultStart = inj.Start.Seconds()
			}
			f, err := os.Create(*svgPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "uavsim:", err)
				return 1
			}
			err = plot.TrajectoryFigure(f, m, res, faultStart)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "uavsim:", err)
				return 1
			}
			fmt.Printf("trajectory figure:  %s\n", *svgPath)
		}
	}
	return 0
}

func writeOutputs(csvPath, logPath string, m mission.Mission, label string, inj *faultinject.Injection, res sim.Result) error {
	innerRadius := bubble.InnerRadius(m.Drone, bubble.DefaultTrackingInterval)
	records := make([]flightlog.Record, 0, len(res.Trajectory))
	for _, p := range res.Trajectory {
		r := flightlog.Record{
			TimeSec: p.T,
			TrueX:   p.TruePos.X, TrueY: p.TruePos.Y, TrueZ: p.TruePos.Z,
			EstX: p.EstPos.X, EstY: p.EstPos.Y, EstZ: p.EstPos.Z,
			TiltDeg:    p.TiltDeg,
			DeviationM: m.CrossTrackDistance(p.EstPos),
		}
		if r.DeviationM > innerRadius {
			r.Flags |= flightlog.FlagInnerViolation
		}
		if inj != nil && p.T >= inj.Start.Seconds() && p.T < (inj.Start+inj.Duration).Seconds() {
			r.Flags |= flightlog.FlagFaultActive
		}
		records = append(records, r)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := flightlog.WriteCSV(f, records); err != nil {
			return err
		}
		fmt.Printf("trajectory CSV:     %s (%d points)\n", csvPath, len(records))
	}
	if logPath != "" {
		f, err := os.Create(logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w, err := flightlog.NewWriter(f, flightlog.Header{MissionID: uint16(m.ID), Label: label})
		if err != nil {
			return err
		}
		for _, r := range records {
			if err := w.Append(r); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Printf("flight log:         %s\n", logPath)
	}
	return nil
}
