// Command figures regenerates every figure of the paper's evaluation as
// SVG files:
//
//   - fig2_bubble.svg — the two-layer bubble concept as a time series
//     (deviation vs. inner/outer radii) for a faulty flight,
//   - fig3_acc_fixed.svg — Acc Fixed Value, 30 s, fastest drone (paper:
//     off-trajectory then crash),
//   - fig4_gyro_random.svg — Gyro Random, 30 s, before a turning point
//     (paper: cannot stabilize for the turn, failsafe),
//   - fig5_imu_random.svg — IMU Random, 30 s (paper: fast violent loss),
//
// plus altitude companions for figures 3-5.
//
// Usage:
//
//	figures [-outdir figures/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/mission"
	"uavres/internal/plot"
	"uavres/internal/sim"
)

func main() {
	os.Exit(run())
}

type figureSpec struct {
	name      string
	missionIx int
	inj       faultinject.Injection
	simSeed   int64
}

func run() int {
	outdir := flag.String("outdir", "figures", "output directory for SVGs")
	flag.Parse()

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}
	missions := mission.Valencia()

	specs := []figureSpec{
		{
			name: "fig3_acc_fixed", missionIx: 9,
			inj: faultinject.Injection{
				Primitive: faultinject.FixedValue, Target: faultinject.TargetAccel,
				Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 2,
			},
			simSeed: 42,
		},
		{
			name: "fig4_gyro_random", missionIx: 4,
			inj: faultinject.Injection{
				Primitive: faultinject.Random, Target: faultinject.TargetGyro,
				Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 4,
			},
			simSeed: 42,
		},
		{
			name: "fig5_imu_random", missionIx: 4,
			inj: faultinject.Injection{
				Primitive: faultinject.Random, Target: faultinject.TargetIMU,
				Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 5,
			},
			simSeed: 42,
		},
	}

	for _, spec := range specs {
		m := missions[spec.missionIx]
		cfg := sim.DefaultConfig()
		cfg.Seed = spec.simSeed
		cfg.RecordTrajectory = true
		res, err := sim.Run(cfg, m, &spec.inj, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		fmt.Printf("%s: %s on mission %d -> %v (%s%s) at %.1f s\n",
			spec.name, spec.inj.Label(), m.ID, res.Outcome,
			res.FailsafeCause, res.CrashReason, res.FlightDurationSec)

		trajPath := filepath.Join(*outdir, spec.name+".svg")
		if err := writeFigure(trajPath, func(f *os.File) error {
			return plot.TrajectoryFigure(f, m, res, spec.inj.Start.Seconds())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		altPath := filepath.Join(*outdir, spec.name+"_alt.svg")
		if err := writeFigure(altPath, func(f *os.File) error {
			return plot.AltitudeFigure(f, res,
				spec.inj.Start.Seconds(), (spec.inj.Start + spec.inj.Duration).Seconds())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
	}

	// Figure 2: bubble layers over time during a survivable fault (Acc
	// Zeros deviates far but completes, exercising both layers).
	m := missions[4]
	inj := faultinject.Injection{
		Primitive: faultinject.Zeros, Target: faultinject.TargetAccel,
		Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 6,
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = 42
	var times, devs, inner, outer []float64
	res, err := sim.Run(cfg, m, &inj, func(tel sim.Telemetry) {
		times = append(times, tel.T)
		devs = append(devs, tel.Bubble.Deviation)
		inner = append(inner, tel.Bubble.InnerRadius)
		outer = append(outer, tel.Bubble.OuterRadius)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}
	fmt.Printf("fig2_bubble: %s on mission %d -> %v, %d/%d violations\n",
		inj.Label(), m.ID, res.Outcome, res.InnerViolations, res.OuterViolations)
	bubblePath := filepath.Join(*outdir, "fig2_bubble.svg")
	if err := writeFigure(bubblePath, func(f *os.File) error {
		return plot.BubbleFigure(f, times, devs, inner, outer)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}

	fmt.Printf("figures written to %s/\n", *outdir)
	return 0
}

func writeFigure(path string, render func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("rendering %s: %w", path, err)
	}
	return nil
}
