// Command tables re-renders the paper's tables from campaign results
// saved by cmd/campaign, without re-running any simulation.
//
// Usage:
//
//	tables -in campaign_results.json            # all tables
//	tables -in campaign_results.json -table 3   # just Table III
package main

import (
	"flag"
	"fmt"
	"os"

	"uavres/internal/core"
	"uavres/internal/paperdata"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in      = flag.String("in", "campaign_results.json", "campaign results JSON")
		table   = flag.Int("table", 0, "render only this table (1-5, 5 = airframe redundancy); 0 = all")
		compare = flag.Bool("compare", false, "append the paper-vs-measured shape comparison")
	)
	flag.Parse()

	if *table == 1 {
		fmt.Print(core.RenderFaultModel())
		return 0
	}

	results, err := core.LoadResultsFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		return 1
	}
	fmt.Printf("loaded %d case results from %s\n\n", len(results), *in)

	switch *table {
	case 0:
		fmt.Print(core.RenderFaultModel())
		fmt.Println()
		fmt.Println(core.RenderTableII(results))
		fmt.Println(core.RenderTableIII(results))
		fmt.Println(core.RenderTableIV(results))
		if multiAirframe(results) {
			fmt.Println(core.RenderAirframeTable(results))
		}
	case 2:
		fmt.Println(core.RenderTableII(results))
	case 3:
		fmt.Println(core.RenderTableIII(results))
	case 4:
		fmt.Println(core.RenderTableIV(results))
	case 5:
		fmt.Println(core.RenderAirframeTable(results))
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown table %d\n", *table)
		return 1
	}
	if *compare {
		fmt.Println(paperdata.Render(paperdata.Compare(results)))
		fmt.Println("Table II side-by-side:")
		measured := append([]core.GroupStats{core.GoldStats(results)}, core.ByDuration(results)...)
		fmt.Println(paperdata.SideBySide(paperdata.TableII(), measured))
		fmt.Println("Table III side-by-side:")
		measured = append([]core.GroupStats{core.GoldStats(results)}, core.ByFault(results)...)
		fmt.Println(paperdata.SideBySide(paperdata.TableIII(), measured))
	}
	return 0
}

// multiAirframe reports whether the results span more than one rotor
// layout — only then is the redundancy table worth printing unasked.
func multiAirframe(results []core.CaseResult) bool {
	seen := map[string]bool{}
	for _, cr := range results {
		seen[cr.Case.Airframe] = true
	}
	return len(seen) > 1
}
