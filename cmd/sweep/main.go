// Command sweep runs one-dimensional parameter sweeps around the paper's
// fixed design and prints one table per sweep:
//
//   - start: injection start time (the paper pins T+90 s) — phase
//     sensitivity across takeoff, cruise, turns, and landing approach,
//   - duration: a finer grid than the paper's {2, 5, 10, 30} s,
//   - threshold: the failsafe gyro-rate threshold (paper default 60 °/s),
//   - risk: the outer-bubble risk factor R (paper uses 1).
//
// Usage:
//
//	sweep -kind start -fault gyro:zeros -values 30,60,90,200,420
//	sweep -kind duration -fault acc:freeze -values 1,2,5,10,20,30
//	sweep -kind threshold -fault gyro:noise -values 30,60,120,240
//	sweep -kind risk -fault acc:zeros -values 1,1.5,2,3
//
// Each swept value compiles to a declarative campaign spec and runs on
// the same execution engine as cmd/campaign (bounded worker pool,
// context cancellation, checkpoint-and-fork); Ctrl-C stops the sweep
// between cases.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/sweep"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		kind      = flag.String("kind", "start", "sweep kind: start | duration | threshold | risk")
		faultSpec = flag.String("fault", "gyro:zeros", "fault as target:primitive")
		valuesCSV = flag.String("values", "", "comma-separated sweep values (required)")
		dur       = flag.Duration("dur", 10*time.Second, "injection duration (fixed unless swept)")
		start     = flag.Duration("start", 90*time.Second, "injection start (fixed unless swept)")
		seed      = flag.Int64("seed", 1, "base seed")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	values, err := parseValues(*valuesCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}

	parts := strings.SplitN(*faultSpec, ":", 2)
	if len(parts) != 2 {
		fmt.Fprintf(os.Stderr, "sweep: fault must be target:primitive, got %q\n", *faultSpec)
		return 1
	}
	target, err := faultinject.ParseTarget(parts[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}
	prim, err := faultinject.ParsePrimitive(parts[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}

	cfg := sweep.Config{
		Primitive: prim, Target: target,
		Start: *start, Duration: *dur,
		Seed: *seed, Workers: *workers,
	}
	label := fmt.Sprintf("%s %s, 10 missions per value", target, prim)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		points []sweep.Point
		unit   string
	)
	switch *kind {
	case "start":
		points = sweep.StartTimes(ctx, cfg, values)
		unit = "start (s)"
	case "duration":
		points = sweep.Durations(ctx, cfg, values)
		unit = "duration (s)"
	case "threshold":
		points = sweep.GyroThresholds(ctx, cfg, values)
		unit = "thresh (°/s)"
	case "risk":
		points = sweep.RiskFactors(ctx, cfg, values)
		unit = "risk R"
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown kind %q\n", *kind)
		return 1
	}

	fmt.Print(sweep.Render(label, unit, points))
	return 0
}

func parseValues(csv string) ([]float64, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, fmt.Errorf("-values is required (e.g. -values 30,60,90)")
	}
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
