// Command report builds the full Markdown analysis report from saved
// campaign results: the paper's Tables II-IV, the paper-vs-measured shape
// comparison, and the secondary breakdowns (per-mission, per-speed,
// failure latency, outcome composition).
//
// Usage:
//
//	report -in campaign_results.json -out report.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uavres/internal/analysis"
	"uavres/internal/core"
	"uavres/internal/mission"
	"uavres/internal/paperdata"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in  = flag.String("in", "campaign_results.json", "campaign results JSON")
		out = flag.String("out", "", "output Markdown path (default: stdout)")
	)
	flag.Parse()

	results, err := core.LoadResultsFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 1
	}

	var b strings.Builder
	b.WriteString("# IMU fault-injection campaign report\n\n")
	fmt.Fprintf(&b, "Input: %s (%d cases)\n\n", *in, len(results))

	b.WriteString("## Paper tables (measured)\n\n```\n")
	b.WriteString(core.RenderTableII(results))
	b.WriteString("\n")
	b.WriteString(core.RenderTableIII(results))
	b.WriteString("\n")
	b.WriteString(core.RenderTableIV(results))
	b.WriteString("```\n\n")

	b.WriteString("## Paper-vs-measured shape checks\n\n```\n")
	b.WriteString(paperdata.Render(paperdata.Compare(results)))
	b.WriteString("```\n\n")

	b.WriteString(analysis.RenderMarkdown(results, mission.Valencia()))

	if *out == "" {
		fmt.Print(b.String())
		return 0
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 1
	}
	fmt.Printf("report written to %s\n", *out)
	return 0
}
