// Command bench measures the simulator's performance envelope and writes
// a machine-readable BENCH_<date>.json: hot-path micro-benchmarks (ns/op,
// allocs/op via testing.Benchmark) plus a timed campaign slice executed
// twice — straight through ("cold") and with checkpoint-and-fork — to
// report the end-to-end speedup prefix sharing buys.
//
// Usage:
//
//	bench [-missions N] [-workers N] [-out BENCH_2026-08-06.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"uavres/internal/core"
	"uavres/internal/ekf"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/obs"
	"uavres/internal/physics"
	"uavres/internal/sensors"
	"uavres/internal/sim"
)

// MicroResult is one micro-benchmark's outcome.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// CampaignResult compares straight-through and checkpointed execution of
// the same campaign slice.
type CampaignResult struct {
	Cases         int     `json:"cases"`
	Missions      int     `json:"missions"`
	Workers       int     `json:"workers"`
	ColdSec       float64 `json:"cold_sec"`
	CheckpointSec float64 `json:"checkpoint_sec"`
	Speedup       float64 `json:"speedup"`
	// OutcomesMatch confirms both modes produced identical outcomes and
	// durations case-for-case (the fork-correctness bar, re-checked on
	// the real workload).
	OutcomesMatch bool `json:"outcomes_match"`
}

// Report is the emitted JSON document.
type Report struct {
	Date      string         `json:"date"`
	GoVersion string         `json:"go_version"`
	NumCPU    int            `json:"num_cpu"`
	Micro     []MicroResult  `json:"micro"`
	Campaign  CampaignResult `json:"campaign"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		missions = flag.Int("missions", 2, "campaign slice size in missions (1-10; 10 = the paper's full 850 cases)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		out      = flag.String("out", "", "output path (default BENCH_<date>.json)")
	)
	flag.Parse()
	if *missions < 1 {
		*missions = 1
	}
	if *missions > 10 {
		*missions = 10
	}

	rep := Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}

	fmt.Println("bench: micro-benchmarks")
	rep.Micro = microBenchmarks()
	for _, m := range rep.Micro {
		fmt.Printf("  %-28s %12.0f ns/op %6d B/op %4d allocs/op\n",
			m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}

	fmt.Printf("bench: campaign slice (%d missions)\n", *missions)
	camp, err := campaignSlice(*missions, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	rep.Campaign = camp
	fmt.Printf("  %d cases: cold %.1fs, checkpointed %.1fs -> %.2fx speedup (outcomes match: %v)\n",
		camp.Cases, camp.ColdSec, camp.CheckpointSec, camp.Speedup, camp.OutcomesMatch)

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("report written to %s\n", path)
	return 0
}

// microBenchmarks runs the hot-path benchmarks in-process. They mirror
// the BenchmarkMicro* functions in the repository's bench_test.go.
func microBenchmarks() []MicroResult {
	out := []MicroResult{}
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		out = append(out, MicroResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	add("EKFPredict", func(b *testing.B) {
		f := ekf.New(ekf.DefaultConfig())
		s := sensors.IMUSample{Accel: mathx.V3(0, 0, -physics.Gravity)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.T = float64(i) * 0.004
			f.Predict(s, 0.004)
		}
	})
	add("PhysicsStep", func(b *testing.B) {
		body, err := physics.NewBody(physics.DefaultParams(), physics.CalmWind())
		if err != nil {
			b.Fatal(err)
		}
		hover := physics.DefaultParams().HoverThrustFraction()
		body.SetMotorCommands([4]float64{hover, hover, hover, hover})
		st := body.State()
		st.Pos.Z = -20
		body.SetState(st)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body.Step(0.002)
		}
	})
	add("SimTenSeconds", func(b *testing.B) {
		cfg := sim.DefaultConfig()
		cfg.MaxSimTime = 10 // cannot finish in 10 s: fixed work per iter
		m := mission.Valencia()[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg, m, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("ObsCounterInc", func(b *testing.B) {
		c := obs.NewRegistry().Counter("steps")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	add("ObsHistogramObserve", func(b *testing.B) {
		h := obs.NewRegistry().Histogram("lat", []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%37) * 0.1)
		}
	})
	add("ObsTraceAppend", func(b *testing.B) {
		tb := obs.NewTraceBuffer(obs.DefaultTraceCapacity)
		e := obs.Event{Kind: obs.EventPhase, Detail: "2"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.T = float64(i)
			tb.Append(e)
		}
	})
	return out
}

// campaignSlice times the first N missions' cases straight through and
// with checkpoint-and-fork, verifying the two produce identical results.
func campaignSlice(missions, workers int) (CampaignResult, error) {
	scenario := mission.Valencia()[:missions]
	cases := core.Plan(scenario, 1)

	runMode := func(checkpoint bool) ([]core.CaseResult, float64, error) {
		r := core.NewRunner()
		r.Missions = scenario
		r.Workers = workers
		r.Checkpoint = checkpoint
		t0 := time.Now()
		results := r.RunAll(context.Background(), cases)
		elapsed := time.Since(t0).Seconds()
		for _, cr := range results {
			if cr.Err != "" {
				return nil, 0, fmt.Errorf("case %s: %s", cr.Case.ID, cr.Err)
			}
		}
		return results, elapsed, nil
	}

	cold, coldSec, err := runMode(false)
	if err != nil {
		return CampaignResult{}, err
	}
	forked, cpSec, err := runMode(true)
	if err != nil {
		return CampaignResult{}, err
	}

	match := len(cold) == len(forked)
	for i := 0; match && i < len(cold); i++ {
		a, b := cold[i].Result, forked[i].Result
		//lint:allow floatcmp forked runs must be BIT-identical to cold runs, not approximately equal
		durEq := a.FlightDurationSec == b.FlightDurationSec
		//lint:allow floatcmp forked runs must be BIT-identical to cold runs, not approximately equal
		distEq := a.DistanceKm == b.DistanceKm
		match = a.Outcome == b.Outcome && durEq && distEq &&
			a.InnerViolations == b.InnerViolations &&
			a.OuterViolations == b.OuterViolations
	}

	res := CampaignResult{
		Cases:         len(cases),
		Missions:      missions,
		Workers:       workers,
		ColdSec:       coldSec,
		CheckpointSec: cpSec,
		OutcomesMatch: match,
	}
	if cpSec > 0 {
		res.Speedup = coldSec / cpSec
	}
	return res, nil
}
