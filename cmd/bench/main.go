// Command bench measures the simulator's performance envelope and writes
// a machine-readable BENCH_<date>.json: hot-path micro-benchmarks (ns/op,
// allocs/op via testing.Benchmark) plus a timed campaign slice executed
// four ways — straight through ("cold"), checkpoint-and-fork with scalar
// forks ("checkpointed"), with lockstep fork batches
// ("checkpointed-batch", the default campaign path and the headline
// speedup), batched with covariance decimation disabled
// ("checkpointed-k1"), and against a fresh content-addressed result
// store, once populating it ("store-cold") and once replaying every
// case from it ("store-warm") — to report the end-to-end speedup prefix
// sharing, batching, and result caching buy.
//
// Usage:
//
//	bench [-missions N] [-workers N] [-out BENCH_2026-08-06.json]
//	bench -compare OLD.json NEW.json
//
// The -compare mode diffs two reports micro-by-micro and exits nonzero
// when NEW regresses: >10% ns/op on any shared micro, or any increase in
// allocs/op (CI perf gate; see scripts/bench.sh).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"uavres/internal/control"
	"uavres/internal/core"
	"uavres/internal/ekf"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/obs"
	"uavres/internal/physics"
	"uavres/internal/sensors"
	"uavres/internal/sim"
	"uavres/internal/spec"
	"uavres/internal/store"
)

// MicroResult is one micro-benchmark's outcome.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// NsSpread is the relative rep-to-rep spread, (max-min)/min, across
	// the microReps repetitions behind NsPerOp. A spread above the
	// regression threshold means the host window was too noisy (steal
	// time, frequency scaling) for the ns/op gate to be meaningful on
	// this micro: compareReports reports but does not gate such rows.
	// Absent in reports predating the field (treated as 0 = trusted).
	NsSpread float64 `json:"ns_spread,omitempty"`
}

// WallClockEntry is one timed execution mode of the campaign slice.
type WallClockEntry struct {
	// Mode is "cold" (straight through), "checkpointed"
	// (checkpoint-and-fork, one scalar fork per case),
	// "checkpointed-batch" (checkpoint-and-fork with lockstep fork
	// batches — the default campaign path and the headline
	// CheckpointSec), or "checkpointed-k1" (batched with covariance
	// decimation disabled — the exact-path control).
	Mode string  `json:"mode"`
	Sec  float64 `json:"sec"`
}

// CampaignResult compares straight-through and checkpointed execution of
// the same campaign slice.
type CampaignResult struct {
	Cases    int `json:"cases"`
	Missions int `json:"missions"`
	// Workers is the RESOLVED pool size actually used (the -workers flag
	// after GOMAXPROCS defaulting and case-count clamping).
	Workers int `json:"workers"`
	// CovDecimation is the EKF covariance decimation factor the cold and
	// checkpointed modes ran with (the sim default).
	CovDecimation int `json:"cov_decimation"`
	// RunnerMode names the execution mode behind the headline
	// CheckpointSec/Speedup numbers: "batch" (lockstep fault-fork
	// batches) or "scalar" (one fork per case). BatchWidth is the
	// lockstep cap in batch mode. compareReports refuses to diff campaign
	// wall clock across differing modes.
	RunnerMode string `json:"runner_mode"`
	BatchWidth int    `json:"batch_width,omitempty"`
	// Airframe names the rotor layout the slice flew (empty in reports
	// predating the airframe axis means quad-x). Wall-clock numbers are
	// only comparable within one layout: rotor count changes the physics
	// and allocation cost per tick.
	Airframe  string           `json:"airframe,omitempty"`
	WallClock []WallClockEntry `json:"wall_clock"`
	ColdSec       float64          `json:"cold_sec"`
	CheckpointSec float64          `json:"checkpoint_sec"`
	Speedup       float64          `json:"speedup"`
	// OutcomesMatch confirms cold and checkpointed modes produced
	// identical outcomes and durations case-for-case (the fork-correctness
	// bar, re-checked on the real workload).
	OutcomesMatch bool `json:"outcomes_match"`
	// DecimationOutcomesMatch confirms the decimated covariance path
	// (k = CovDecimation) and the exact path (k = 1) reach identical
	// verdicts on every case: outcome, bubble violations, and the
	// crash/failsafe split.
	DecimationOutcomesMatch bool `json:"decimation_outcomes_match"`
}

// Report is the emitted JSON document.
type Report struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// MicroReps is how many repetitions each micro-benchmark ran; the
	// reported ns/op is the minimum across them (host steal time only
	// inflates a run, so the minimum is the least-biased estimator).
	MicroReps int `json:"micro_reps,omitempty"`
	// SpecHash identifies the campaign spec the timed slice derives from
	// (the built-in paper-850 spec), so reports are only compared across
	// identical experiment plans.
	SpecHash string `json:"spec_hash,omitempty"`
	// RNGPolicy is the environment normal-sampler policy the campaign
	// slice ran under (the default, "polar"; the NormFloat64* micros
	// measure both samplers regardless).
	RNGPolicy string         `json:"rng_policy,omitempty"`
	Micro     []MicroResult  `json:"micro"`
	Campaign  CampaignResult `json:"campaign"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		missions = flag.Int("missions", 2, "campaign slice size in missions (1-10; 10 = the paper's full 850 cases)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		out      = flag.String("out", "", "output path (default BENCH_<date>.json)")
		compare  = flag.Bool("compare", false, "compare two reports: bench -compare OLD.json NEW.json (exit 1 on regression)")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "bench: -compare needs exactly two report paths: OLD.json NEW.json")
			return 2
		}
		return compareReports(flag.Arg(0), flag.Arg(1))
	}
	if *missions < 1 {
		*missions = 1
	}
	if *missions > 10 {
		*missions = 10
	}

	rep := Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		MicroReps:  microReps,
		SpecHash:   spec.Paper(1).Hash(),
		RNGPolicy:  mathx.NormPolar.String(),
	}

	fmt.Println("bench: micro-benchmarks")
	rep.Micro = microBenchmarks()
	for _, m := range rep.Micro {
		fmt.Printf("  %-28s %12.0f ns/op %6d B/op %4d allocs/op\n",
			m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}

	fmt.Printf("bench: campaign slice (%d missions)\n", *missions)
	camp, err := campaignSlice(*missions, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	rep.Campaign = camp
	fmt.Printf("  %d cases, %d workers: cold %.1fs, checkpointed+batch %.1fs -> %.2fx speedup (outcomes match: %v)\n",
		camp.Cases, camp.Workers, camp.ColdSec, camp.CheckpointSec, camp.Speedup, camp.OutcomesMatch)
	for _, wc := range camp.WallClock {
		fmt.Printf("    %-20s %6.1fs\n", wc.Mode, wc.Sec)
	}
	fmt.Printf("  covariance decimation k=%d vs exact k=1: outcomes match: %v\n",
		camp.CovDecimation, camp.DecimationOutcomesMatch)

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("report written to %s\n", path)
	return 0
}

// microReps is how many repetitions of each micro-benchmark run; the
// minimum ns/op across them is reported. On a shared single-vCPU host,
// steal time only ever inflates a run, so the minimum is the least-biased
// estimator of true cost (see DESIGN.md §11). Allocation counts are
// deterministic; any repetition serves.
const microReps = 5

// microBenchmarks runs the hot-path benchmarks in-process. They mirror
// the BenchmarkMicro* functions in the repository's bench_test.go.
func microBenchmarks() []MicroResult {
	out := []MicroResult{}
	add := func(name string, fn func(b *testing.B)) {
		best := testing.Benchmark(fn)
		bestNs := float64(best.T.Nanoseconds()) / float64(best.N)
		worstNs := bestNs
		for rep := 1; rep < microReps; rep++ {
			r := testing.Benchmark(fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if ns < bestNs {
				best, bestNs = r, ns
			}
			if ns > worstNs {
				worstNs = ns
			}
		}
		spread := 0.0
		if bestNs > 0 {
			spread = (worstNs - bestNs) / bestNs
		}
		out = append(out, MicroResult{
			Name:        name,
			NsPerOp:     bestNs,
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
			NsSpread:    spread,
		})
	}

	// EKFPredict is pinned to the exact per-step covariance path (k=1) so
	// the series stays comparable with reports predating decimation;
	// EKFPredictDecimated measures the default flight configuration.
	add("EKFPredict", func(b *testing.B) {
		cfg := ekf.DefaultConfig()
		cfg.CovarianceDecimation = 1
		f := ekf.New(cfg)
		s := sensors.IMUSample{Accel: mathx.V3(0, 0, -physics.Gravity)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.T = float64(i) * 0.004
			f.Predict(s, 0.004)
		}
	})
	add("EKFPredictDecimated", func(b *testing.B) {
		f := ekf.New(ekf.DefaultConfig()) // default k=4
		s := sensors.IMUSample{Accel: mathx.V3(0, 0, -physics.Gravity)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.T = float64(i) * 0.004
			f.Predict(s, 0.004)
		}
	})
	add("Mat15PropagateSym", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		_ = ekf.PropagateSymLoop(b.N)
	})
	add("PhysicsStep", func(b *testing.B) {
		body, err := physics.NewBody(physics.DefaultParams(), physics.CalmWind())
		if err != nil {
			b.Fatal(err)
		}
		hover := physics.DefaultParams().HoverThrustFraction()
		body.SetMotorCommands(physics.Rotors{hover, hover, hover, hover})
		st := body.State()
		st.Pos.Z = -20
		body.SetState(st)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body.Step(0.002)
		}
	})
	add("IMUSampleVote", func(b *testing.B) {
		imus, err := sensors.NewRedundantIMUs(3, sensors.DefaultIMUSpec(), mathx.NewRand(3))
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]sensors.IMUSample, 0, 3)
		accel := mathx.V3(0, 0, -physics.Gravity)
		gyro := mathx.V3(0.01, -0.02, 0.005)
		cfg := sim.DefaultConfig()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			all := imus.SampleAllInto(buf, float64(i)*0.004, accel, gyro)
			_ = sensors.VoteOutlier(all, imus.Primary(), cfg.VoteAccelTol, cfg.VoteGyroTol)
		}
	})
	add("ControlUpdate", func(b *testing.B) {
		ctl := control.New(control.DefaultGains(), physics.DefaultParams(), 0.004)
		est := control.Estimate{Att: mathx.QuatIdentity(), Vel: mathx.V3(1, 0, 0), Pos: mathx.V3(0, 0, -20)}
		sp := control.Setpoint{Pos: mathx.V3(50, 10, -25), Yaw: 0.3, CruiseSpeed: 8, MaxClimb: 3, MaxDescend: 2}
		gyro := mathx.V3(0.01, -0.02, 0.005)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = ctl.Update(0.004, est, gyro, sp)
		}
	})
	// The two normal-sampler policies behind every sensor/wind deviate:
	// Marsaglia polar (the bit-compatible default) vs the 128-layer
	// ziggurat.
	add("NormFloat64Polar", func(b *testing.B) {
		r := mathx.NewRandPolicy(1, mathx.NormPolar)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = r.NormFloat64()
		}
	})
	add("NormFloat64Ziggurat", func(b *testing.B) {
		r := mathx.NewRandPolicy(1, mathx.NormZiggurat)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = r.NormFloat64()
		}
	})
	add("SimTenSeconds", func(b *testing.B) {
		cfg := sim.DefaultConfig()
		cfg.MaxSimTime = 10 // cannot finish in 10 s: fixed work per iter
		m := mission.Valencia()[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg, m, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("ObsCounterInc", func(b *testing.B) {
		c := obs.NewRegistry().Counter("steps")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	add("ObsHistogramObserve", func(b *testing.B) {
		h := obs.NewRegistry().Histogram("lat", []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%37) * 0.1)
		}
	})
	add("ObsTraceAppend", func(b *testing.B) {
		tb := obs.NewTraceBuffer(obs.DefaultTraceCapacity)
		e := obs.Event{Kind: obs.EventPhase, Detail: "2"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.T = float64(i)
			tb.Append(e)
		}
	})
	add("ObsSpanStartEnd", func(b *testing.B) {
		tr := obs.NewTracer(obs.Stopped(), 1<<16)
		root := tr.Start("campaign", 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := tr.Start("case", root, obs.StrAttr("id", "m01-gold"))
			tr.End(id)
			if tr.Len() >= 1<<16 {
				// Recycle within preallocated capacity so the loop never
				// measures slice growth, only the Start/End hot path.
				tr.Reset()
				root = tr.Start("campaign", 0)
			}
		}
	})
	add("CoreStatusSnapshot", func(b *testing.B) {
		reg := obs.NewRegistry()
		src := core.NewStatusSource(reg, core.StatusConfig{
			Total: 850, RunnerMode: "batch", BatchWidth: 32, Workers: 8,
		})
		reg.Counter("campaign_cases_total").Add(425)
		reg.Histogram("campaign_case_seconds", nil).Observe(0.2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st := src.Snapshot(); st.CasesTotal != 850 {
				b.Fatal("bad snapshot")
			}
		}
	})
	return out
}

// campaignSlice times the first N missions' cases straight through and
// with checkpoint-and-fork, verifying the two produce identical results,
// then re-runs the checkpointed mode with covariance decimation disabled
// to verify decimation changes no verdict.
func campaignSlice(missions, workers int) (CampaignResult, error) {
	scenario := mission.Valencia()[:missions]
	cases := core.Plan(scenario, 1)

	resolved := workers
	if resolved <= 0 {
		resolved = runtime.GOMAXPROCS(0)
	}
	if resolved > len(cases) {
		resolved = len(cases)
	}

	runMode := func(checkpoint, batch bool, covDecim int) ([]core.CaseResult, float64, error) {
		r := core.NewRunner()
		r.Missions = scenario
		r.Workers = workers
		r.Checkpoint = checkpoint
		r.Batch = batch
		if covDecim > 0 {
			r.Config.EKF.CovarianceDecimation = covDecim
		}
		t0 := time.Now()
		results := r.RunAll(context.Background(), cases)
		elapsed := time.Since(t0).Seconds()
		for _, cr := range results {
			if cr.Err != "" {
				return nil, 0, fmt.Errorf("case %s: %s", cr.Case.ID, cr.Err)
			}
		}
		return results, elapsed, nil
	}

	cold, coldSec, err := runMode(false, false, 0)
	if err != nil {
		return CampaignResult{}, err
	}
	forked, cpSec, err := runMode(true, false, 0)
	if err != nil {
		return CampaignResult{}, err
	}
	batched, batchSec, err := runMode(true, true, 0)
	if err != nil {
		return CampaignResult{}, err
	}
	exact, exactSec, err := runMode(true, true, 1)
	if err != nil {
		return CampaignResult{}, err
	}

	// Store-backed modes: the same batched execution over a fingerprinted
	// copy of the plan against a fresh content-addressed store. The cold
	// pass pays the Put cost on every case; the warm pass replays every
	// case from disk without simulating — the wall-clock floor for an
	// overlapping grid.
	storeCases := make([]core.Case, len(cases))
	copy(storeCases, cases)
	spec.AttachFingerprints(storeCases, sim.DefaultConfig())
	storeTmp, err := os.MkdirTemp("", "bench-store-")
	if err != nil {
		return CampaignResult{}, err
	}
	defer os.RemoveAll(storeTmp)
	st, err := store.Open(storeTmp)
	if err != nil {
		return CampaignResult{}, err
	}
	defer st.Close()
	runStore := func() ([]core.CaseResult, float64, error) {
		r := core.NewRunner()
		r.Missions = scenario
		r.Workers = workers
		r.Cache = st
		t0 := time.Now()
		results := r.RunAll(context.Background(), storeCases)
		elapsed := time.Since(t0).Seconds()
		for _, cr := range results {
			if cr.Err != "" {
				return nil, 0, fmt.Errorf("case %s: %s", cr.Case.ID, cr.Err)
			}
		}
		return results, elapsed, nil
	}
	_, storeColdSec, err := runStore()
	if err != nil {
		return CampaignResult{}, err
	}
	warm, storeWarmSec, err := runStore()
	if err != nil {
		return CampaignResult{}, err
	}
	if hits := st.Stats().Hits; hits != int64(len(cases)) {
		return CampaignResult{}, fmt.Errorf("store-warm replayed %d/%d cases from the store", hits, len(cases))
	}

	// Both checkpointed modes — scalar forks and lockstep batches — must
	// be BIT-identical to the straight-through runs.
	bitIdentical := func(xs, ys []core.CaseResult) bool {
		match := len(xs) == len(ys)
		for i := 0; match && i < len(xs); i++ {
			a, b := xs[i].Result, ys[i].Result
			//lint:allow floatcmp forked runs must be BIT-identical to cold runs, not approximately equal
			durEq := a.FlightDurationSec == b.FlightDurationSec
			//lint:allow floatcmp forked runs must be BIT-identical to cold runs, not approximately equal
			distEq := a.DistanceKm == b.DistanceKm
			match = a.Outcome == b.Outcome && durEq && distEq &&
				a.InnerViolations == b.InnerViolations &&
				a.OuterViolations == b.OuterViolations
		}
		return match
	}
	match := bitIdentical(cold, forked) && bitIdentical(cold, batched) &&
		bitIdentical(cold, warm)

	// Decimation is a numerical approximation, so only the VERDICT fields
	// must agree with the exact path: outcome, bubble violations, and the
	// crash/failsafe split.
	decimMatch := len(batched) == len(exact)
	for i := 0; decimMatch && i < len(batched); i++ {
		a, b := batched[i].Result, exact[i].Result
		decimMatch = a.Outcome == b.Outcome &&
			a.InnerViolations == b.InnerViolations &&
			a.OuterViolations == b.OuterViolations &&
			a.FailsafeCause == b.FailsafeCause &&
			a.CrashReason == b.CrashReason
	}

	res := CampaignResult{
		Cases:         len(cases),
		Missions:      missions,
		Workers:       resolved,
		CovDecimation: sim.DefaultConfig().EKF.CovarianceDecimation,
		RunnerMode:    "batch",
		Airframe:      sim.DefaultConfig().Airframe.Layout.String(),
		BatchWidth:    core.DefaultBatchWidth,
		WallClock: []WallClockEntry{
			{Mode: "cold", Sec: coldSec},
			{Mode: "checkpointed", Sec: cpSec},
			{Mode: "checkpointed-batch", Sec: batchSec},
			{Mode: "checkpointed-k1", Sec: exactSec},
			{Mode: "store-cold", Sec: storeColdSec},
			{Mode: "store-warm", Sec: storeWarmSec},
		},
		ColdSec:                 coldSec,
		CheckpointSec:           batchSec,
		OutcomesMatch:           match,
		DecimationOutcomesMatch: decimMatch,
	}
	if batchSec > 0 {
		res.Speedup = coldSec / batchSec
	}
	return res, nil
}

// reportAirframe resolves a campaign result's rotor layout, treating the
// empty value from pre-airframe reports as quad-x.
func reportAirframe(c CampaignResult) string {
	if c.Airframe == "" {
		return physics.QuadX.String()
	}
	return c.Airframe
}

// compareReports diffs two bench reports and returns 1 when NEW regresses
// against OLD: any shared micro more than 10% slower in ns/op, or any
// increase in allocs/op. Micros present in only one report are noted but
// never fail the gate. A ns/op delta is only gated when BOTH reports saw a
// rep-to-rep spread at or below the same 10% threshold on that micro —
// when either side's own repetitions disagreed by more than the gate
// width, the host window (vCPU steal, frequency scaling) is louder than
// any real change and the row is reported as noisy instead of failing.
// Allocation counts are deterministic, so allocs/op regressions always
// gate regardless of timing noise.
func compareReports(oldPath, newPath string) int {
	load := func(path string) (Report, error) {
		var rep Report
		data, err := os.ReadFile(path)
		if err != nil {
			return rep, err
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			return rep, fmt.Errorf("%s: %w", path, err)
		}
		return rep, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	newRep, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}

	// Reports from different host windows (CPU count or toolchain) time
	// different machines, not different code: the micro gate still runs
	// (minimum-of-reps is fairly robust), but every wall-clock delta
	// below is suspect. Warn loudly rather than silently diffing.
	if oldRep.NumCPU != newRep.NumCPU || oldRep.GoVersion != newRep.GoVersion {
		fmt.Fprintf(os.Stderr,
			"bench: WARNING: reports come from different host windows — wall-clock deltas are not comparable\n"+
				"  old %s: num_cpu=%d go_version=%s\n"+
				"  new %s: num_cpu=%d go_version=%s\n",
			oldPath, oldRep.NumCPU, oldRep.GoVersion,
			newPath, newRep.NumCPU, newRep.GoVersion)
	}

	oldBy := map[string]MicroResult{}
	for _, m := range oldRep.Micro {
		oldBy[m.Name] = m
	}
	fmt.Printf("bench: comparing %s (old) -> %s (new)\n", oldPath, newPath)
	fmt.Printf("  %-28s %12s %12s %8s %s\n", "micro", "old ns/op", "new ns/op", "delta", "allocs")
	regressions := 0
	for _, m := range newRep.Micro {
		o, ok := oldBy[m.Name]
		if !ok {
			fmt.Printf("  %-28s %12s %12.0f %8s %d (new)\n", m.Name, "-", m.NsPerOp, "-", m.AllocsPerOp)
			continue
		}
		delete(oldBy, m.Name)
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (m.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		verdict := ""
		if delta > 10 {
			if o.NsSpread > 0.10 || m.NsSpread > 0.10 {
				verdict = fmt.Sprintf("  noisy (spread %.0f%% -> %.0f%%), not gated",
					o.NsSpread*100, m.NsSpread*100)
			} else {
				verdict = "  REGRESSION: >10% slower"
				regressions++
			}
		}
		if m.AllocsPerOp > o.AllocsPerOp {
			verdict += fmt.Sprintf("  REGRESSION: allocs/op %d -> %d", o.AllocsPerOp, m.AllocsPerOp)
			regressions++
		}
		fmt.Printf("  %-28s %12.0f %12.0f %+7.1f%% %d->%d%s\n",
			m.Name, o.NsPerOp, m.NsPerOp, delta, o.AllocsPerOp, m.AllocsPerOp, verdict)
	}
	for name := range oldBy {
		fmt.Printf("  %-28s dropped from new report\n", name)
	}

	// Campaign wall clock is only comparable when the two reports timed
	// the same experiment plan in the same execution mode — never compare
	// across runner modes (or batch widths, worker counts, decimation
	// factors) silently.
	oc, nc := oldRep.Campaign, newRep.Campaign
	sameMode := oldRep.SpecHash == newRep.SpecHash &&
		oc.Cases == nc.Cases && oc.Workers == nc.Workers &&
		oc.CovDecimation == nc.CovDecimation &&
		oc.RunnerMode == nc.RunnerMode && oc.BatchWidth == nc.BatchWidth &&
		reportAirframe(oc) == reportAirframe(nc)
	if sameMode {
		fmt.Printf("  campaign (%d cases, mode=%s): checkpointed %.1fs -> %.1fs, speedup %.2fx -> %.2fx\n",
			nc.Cases, nc.RunnerMode, oc.CheckpointSec, nc.CheckpointSec, oc.Speedup, nc.Speedup)
	} else {
		fmt.Printf("  campaign: wall clock NOT compared — execution modes differ\n"+
			"    old: cases=%d workers=%d k=%d mode=%q width=%d airframe=%s spec=%s\n"+
			"    new: cases=%d workers=%d k=%d mode=%q width=%d airframe=%s spec=%s\n",
			oc.Cases, oc.Workers, oc.CovDecimation, oc.RunnerMode, oc.BatchWidth, reportAirframe(oc), oldRep.SpecHash,
			nc.Cases, nc.Workers, nc.CovDecimation, nc.RunnerMode, nc.BatchWidth, reportAirframe(nc), newRep.SpecHash)
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d regression(s) against %s\n", regressions, oldPath)
		return 1
	}
	fmt.Println("bench: no regressions")
	return 0
}
