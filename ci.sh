#!/usr/bin/env sh
# Full CI gate: build, vet, simulation-aware lint, tests, the race
# detector over the concurrent packages (broker, sweep shards, tracker,
# campaign runner), and a one-iteration micro-benchmark smoke (the hot
# paths must at least still run; scripts/bench.sh measures them). Any
# failure fails the gate.
set -eux

go build ./...
go vet ./...
go run ./cmd/uavlint ./...
go test ./...
go test -race ./internal/telemetry/ ./internal/sweep/ ./internal/uspace/ ./internal/core/ ./internal/sim/
go test -run XXX -bench Micro -benchtime=1x -benchmem .
