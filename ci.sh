#!/usr/bin/env sh
# Full CI gate: build, vet, simulation-aware lint, tests, the race
# detector over the concurrent packages (broker, tracker, campaign
# runner, metrics registry), a one-iteration micro-benchmark smoke (the
# hot paths must at least still run; scripts/bench.sh measures them),
# spec validation for the shipped example campaign specs, and three
# end-to-end smokes: a mini spec-driven campaign must emit a metrics
# snapshot that passes the schema validator, re-running it with -resume
# over the completed results file must execute zero cases, and the
# observability surface (trace-event export, live status endpoint,
# black-box dumps) must produce valid, loadable artifacts. Any failure
# fails the gate.
set -eux

tmpdir=$(mktemp -d)
trap 'kill "${CAMPAIGND_PID:-}" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

go build ./...
go vet ./...
# Simulation-aware lint over the whole module, stale suppressions
# included; the machine-readable report lands next to the other CI
# artifacts. goroutinespawn inside the suite enforces that sim-critical
# packages (sweep among them) spawn no goroutines, so no grep gate is
# needed. On findings, replay the report for humans and fail.
go run ./cmd/uavlint -unused-suppressions -json ./... >"$tmpdir/lint.json" || {
	cat "$tmpdir/lint.json" >&2
	exit 1
}
go test ./...
go test -race ./internal/telemetry/ ./internal/sweep/ ./internal/uspace/ ./internal/core/ ./internal/sim/ ./internal/obs/
go test -run XXX -bench Micro -benchtime=1x -benchmem .

# Example campaign specs stay loadable and compilable.
go run ./cmd/campaign -validate-spec examples/specs/paper-850.json
go run ./cmd/campaign -validate-spec examples/specs/redundancy-ablation.json
go run ./cmd/campaign -validate-spec examples/specs/mini-grid.json
go run ./cmd/campaign -validate-spec examples/specs/mini-grid-wide.json
go run ./cmd/campaign -validate-spec examples/specs/redundancy-matrix.json
go run ./cmd/campaign -validate-spec examples/specs/mini-hexa-actuator.json

# Airframe + actuator smoke: the hexa actuator mini-spec (rotor FDI and
# allocation reconfig enabled) must run through both the lockstep batch
# path and scalar forks with bit-identical results.
go run ./cmd/campaign -spec examples/specs/mini-hexa-actuator.json -q -out "$tmpdir/hexa.json"
go run ./cmd/campaign -spec examples/specs/mini-hexa-actuator.json -q -out "$tmpdir/hexa_scalar.json" -batch=false
go run ./cmd/campaign -compare-results "$tmpdir/hexa.json,$tmpdir/hexa_scalar.json"

# Observability + resume smoke: run one mission's gyro cases with
# metrics capture, validate the snapshot schema, then resume over the
# completed results file — zero cases may execute.
go run ./cmd/campaign -select mission=1,target=gyro -q -out "$tmpdir/results.json" -metrics-out "$tmpdir/metrics.json"
go run ./cmd/campaign -validate-metrics "$tmpdir/metrics.json"
go run ./cmd/campaign -select mission=1,target=gyro -q -out "$tmpdir/results.json" -resume | tee "$tmpdir/resume.log"
grep -q 'resume: .* 0 to run' "$tmpdir/resume.log"

# Batch-vs-scalar equivalence smoke: the slice above ran through the
# default lockstep batch path; re-run it with scalar forks and require
# bit-identical results case-for-case.
go run ./cmd/campaign -select mission=1,target=gyro -q -out "$tmpdir/results_scalar.json" -batch=false
go run ./cmd/campaign -compare-results "$tmpdir/results.json,$tmpdir/results_scalar.json"

# Tracing + black-box smoke: mission 1's accelerometer cases include
# crash and containment-violation outcomes, so this run must emit a
# valid trace-event JSON (one case span per case), black-box dumps, and
# exercise the fail-fast parent-directory creation ($tmpdir/obs does not
# exist yet).
go run ./cmd/campaign -select mission=1,target=accel,duration=5s -q \
	-out "$tmpdir/obs/results.json" -trace-out "$tmpdir/obs/trace.json" \
	-blackbox-dir "$tmpdir/obs/blackbox"
go run ./cmd/campaign -validate-trace "$tmpdir/obs/trace.json"
# Every crash/violation case yielded a black box, and replay loads one.
ls "$tmpdir/obs/blackbox"/*.blackbox.json
go run ./cmd/replay -blackbox "$(ls "$tmpdir/obs/blackbox"/*.blackbox.json | head -n 1)" >/dev/null
# Live status endpoint: mid-run 200 with well-formed JSON plus the SSE
# stream, driven by the package test against the real handler stack.
go test -run 'TestStatusEndpointMidRun' ./cmd/campaign/

# campaignd + content-addressed store smoke: start the daemon on a free
# port, submit the mini grid twice — the second run must be >=95% cache
# hits (here: 100%, zero misses) and its merged results file must
# bit-compare equal to a direct cmd/campaign run of the same spec — then
# submit the overlapping wider grid, which may simulate only the two new
# duration cells.
go build -o "$tmpdir/campaignd" ./cmd/campaignd
"$tmpdir/campaignd" -addr 127.0.0.1:0 -addr-file "$tmpdir/campaignd.addr" \
	-store "$tmpdir/store" -out-dir "$tmpdir/campaignd-out" -worker-procs 2 -q &
CAMPAIGND_PID=$!
for _ in $(seq 1 100); do
	[ -s "$tmpdir/campaignd.addr" ] && break
	sleep 0.1
done
CAMPAIGND_ADDR=$(cat "$tmpdir/campaignd.addr")
"$tmpdir/campaignd" -submit examples/specs/mini-grid.json -addr "$CAMPAIGND_ADDR" | tee "$tmpdir/run1.json"
"$tmpdir/campaignd" -submit examples/specs/mini-grid.json -addr "$CAMPAIGND_ADDR" | tee "$tmpdir/run2.json"
grep -q '"cache_misses": 0' "$tmpdir/run2.json"
grep -q '"cache_hit_ratio": 1' "$tmpdir/run2.json"
warm_results=$(grep -o '"results_path": *"[^"]*"' "$tmpdir/run2.json" | cut -d'"' -f4)
go run ./cmd/campaign -spec examples/specs/mini-grid.json -q -out "$tmpdir/direct.json"
go run ./cmd/campaign -compare-results "$warm_results,$tmpdir/direct.json"
"$tmpdir/campaignd" -submit examples/specs/mini-grid-wide.json -addr "$CAMPAIGND_ADDR" | tee "$tmpdir/run3.json"
grep -q '"cache_hits": 5' "$tmpdir/run3.json"
grep -q '"cache_misses": 2' "$tmpdir/run3.json"
kill "$CAMPAIGND_PID"
CAMPAIGND_PID=

# The same store serves cmd/campaign directly: a -store run over the
# warmed cache must simulate nothing new for the overlapping cells.
go run ./cmd/campaign -spec examples/specs/mini-grid.json -q \
	-out "$tmpdir/store_direct.json" -store "$tmpdir/store" \
	-metrics-out "$tmpdir/store_metrics.json" | tee "$tmpdir/store_run.log"
grep -q 'store .*: 5 hits, 0 misses' "$tmpdir/store_run.log"
grep -q 'campaign_cache_hits_total' "$tmpdir/store_metrics.json"
grep -q 'store_objects' "$tmpdir/store_metrics.json"
go run ./cmd/campaign -compare-results "$tmpdir/store_direct.json,$tmpdir/direct.json"

# Perf-regression gate against the committed bench report: measure a
# fresh one and fail on >10% ns/op or any allocs/op regression (see
# scripts/bench.sh -compare; campaign wall clock is only diffed when the
# execution modes match). Set BENCH_BASELINE to override, or to "" to
# skip.
BENCH_BASELINE="${BENCH_BASELINE-BENCH_2026-08-08.json}"
if [ -n "$BENCH_BASELINE" ]; then
	go run ./cmd/bench -missions 1 -out "$tmpdir/bench_new.json"
	go run ./cmd/bench -compare "$BENCH_BASELINE" "$tmpdir/bench_new.json"
fi
