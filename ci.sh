#!/usr/bin/env sh
# Full CI gate: build, vet, simulation-aware lint, tests, the race
# detector over the concurrent packages (broker, sweep shards, tracker,
# campaign runner, metrics registry), a one-iteration micro-benchmark
# smoke (the hot paths must at least still run; scripts/bench.sh
# measures them), and an observability smoke: a one-mission campaign
# must emit a metrics snapshot that passes the schema validator. Any
# failure fails the gate.
set -eux

go build ./...
go vet ./...
go run ./cmd/uavlint ./...
go test ./...
go test -race ./internal/telemetry/ ./internal/sweep/ ./internal/uspace/ ./internal/core/ ./internal/sim/ ./internal/obs/
go test -run XXX -bench Micro -benchtime=1x -benchmem .

# Observability smoke: run one mission's cases with metrics capture,
# then validate the snapshot's JSON schema with the same binary.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/campaign -subset m01 -q -out "$tmpdir/results.json" -metrics-out "$tmpdir/metrics.json"
go run ./cmd/campaign -validate-metrics "$tmpdir/metrics.json"

# Optional perf-regression gate: when BENCH_BASELINE points at a committed
# bench report, measure a fresh one and fail on >10% ns/op or any
# allocs/op regression (see scripts/bench.sh -compare).
if [ -n "${BENCH_BASELINE:-}" ]; then
	go run ./cmd/bench -missions 1 -out "$tmpdir/bench_new.json"
	go run ./cmd/bench -compare "$BENCH_BASELINE" "$tmpdir/bench_new.json"
fi
