package uavres

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section on a reduced-but-representative slice (benchmarks
// must finish in minutes; the full 850-case campaign lives in
// cmd/campaign). Each Benchmark prints the same rows the paper reports
// and exposes the headline quantities as benchmark metrics.
//
//	go test -bench=Table -benchtime=1x     # Tables II-IV
//	go test -bench=Fig -benchtime=1x       # Figures 3-5
//	go test -bench=Ablation -benchtime=1x  # design-choice ablations
//	go test -bench=Micro                   # substrate micro-benchmarks

import (
	"context"
	"fmt"
	"testing"
	"time"

	"uavres/internal/bubble"
	"uavres/internal/control"
	"uavres/internal/core"
	"uavres/internal/ekf"
	"uavres/internal/faultinject"
	"uavres/internal/lint"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/mitigation"
	"uavres/internal/obs"
	"uavres/internal/physics"
	"uavres/internal/sensors"
	"uavres/internal/sim"
	"uavres/internal/telemetry"
)

// benchSlice runs the campaign restricted to the given missions.
func benchSlice(b *testing.B, missions []mission.Mission) []core.CaseResult {
	b.Helper()
	runner := core.NewRunner()
	runner.Missions = missions
	cases := core.Plan(missions, 1)
	results := runner.RunAll(context.Background(), cases)
	for _, r := range results {
		if r.Err != "" {
			b.Fatalf("case %s: %s", r.Case.ID, r.Err)
		}
	}
	return results
}

// BenchmarkTableII regenerates the paper's Table II (metrics grouped by
// injection duration) on a two-mission slice: mission 4 (straight
// courier) and mission 5 (turning courier).
func BenchmarkTableII(b *testing.B) {
	ms := mission.Valencia()[3:5]
	for i := 0; i < b.N; i++ {
		results := benchSlice(b, ms)
		if i == b.N-1 {
			b.Log("\n" + core.RenderTableII(results))
			rows := core.ByDuration(results)
			b.ReportMetric(rows[0].CompletedPct, "completed2s_%")
			b.ReportMetric(rows[len(rows)-1].CompletedPct, "completed30s_%")
			b.ReportMetric(core.GoldStats(results).DurationSec, "gold_duration_s")
		}
	}
}

// BenchmarkTableIII regenerates the paper's Table III (metrics grouped by
// the 21 fault types) on the same slice.
func BenchmarkTableIII(b *testing.B) {
	ms := mission.Valencia()[3:5]
	for i := 0; i < b.N; i++ {
		results := benchSlice(b, ms)
		if i == b.N-1 {
			b.Log("\n" + core.RenderTableIII(results))
			rows := core.ByFault(results)
			if acc, exists := core.Find(rows, "Acc Zeros"); exists {
				b.ReportMetric(acc.CompletedPct, "accZeros_%")
			}
			if gyro, exists := core.Find(rows, "Gyro Min"); exists {
				b.ReportMetric(gyro.CompletedPct, "gyroMin_%")
			}
		}
	}
}

// BenchmarkTableIV regenerates the paper's Table IV (failure analysis by
// duration and by component).
func BenchmarkTableIV(b *testing.B) {
	ms := mission.Valencia()[3:5]
	for i := 0; i < b.N; i++ {
		results := benchSlice(b, ms)
		if i == b.N-1 {
			b.Log("\n" + core.RenderTableIV(results))
			comp := core.ByComponent(results)
			for _, row := range comp {
				b.ReportMetric(row.FailedPct, row.Label+"_failed_%")
			}
		}
	}
}

// figureRun executes one of the paper's figure scenarios and summarizes
// the trajectory.
func figureRun(b *testing.B, m mission.Mission, inj faultinject.Injection) sim.Result {
	b.Helper()
	cfg := sim.DefaultConfig()
	cfg.RecordTrajectory = true
	cfg.Seed = 42
	res, err := sim.Run(cfg, m, &inj, nil)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func logTrajectory(b *testing.B, m mission.Mission, res sim.Result) {
	b.Helper()
	b.Logf("%s on mission %d: outcome=%v (%s%s) after %.1f s",
		res.Label(), m.ID, res.Outcome, res.FailsafeCause, res.CrashReason, res.FlightDurationSec)
	var maxDev float64
	for _, p := range res.Trajectory {
		if d := m.CrossTrackDistance(p.TruePos); d > maxDev {
			maxDev = d
		}
	}
	b.Logf("max deviation from assigned volume: %.1f m over %d trajectory points",
		maxDev, len(res.Trajectory))
	// Print the figure's "series": a sparse trail around the injection.
	for _, p := range res.Trajectory {
		if p.T >= 85 && int(p.T)%3 == 0 {
			b.Logf("  t=%5.1fs pos=(%7.1f, %7.1f) alt=%5.1fm tilt=%5.1f°",
				p.T, p.TruePos.X, p.TruePos.Y, -p.TruePos.Z, p.TiltDeg)
		}
	}
}

// BenchmarkFig3 reproduces Figure 3: a fixed (random constant) value
// injected into the accelerometer of the fastest drone (mission 10,
// 25 km/h) for 30 s mid-leg — the paper observes the drone leaving its
// trajectory and crashing.
func BenchmarkFig3(b *testing.B) {
	m := mission.Valencia()[9]
	inj := faultinject.Injection{
		Primitive: faultinject.FixedValue, Target: faultinject.TargetAccel,
		Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 2,
	}
	var res sim.Result
	for i := 0; i < b.N; i++ {
		res = figureRun(b, m, inj)
	}
	logTrajectory(b, m, res)
	if res.Outcome != sim.OutcomeCrash {
		b.Errorf("Fig. 3 outcome = %v, paper reports a crash", res.Outcome)
	}
	b.ReportMetric(res.FlightDurationSec, "flight_s")
}

// BenchmarkFig4 reproduces Figure 4: random values injected into the
// gyrometer for 30 s just before a waypoint (mission 5's turn) — the
// paper observes the drone failing to stabilize for the turn and
// engaging failsafe.
func BenchmarkFig4(b *testing.B) {
	m := mission.Valencia()[4]
	inj := faultinject.Injection{
		Primitive: faultinject.Random, Target: faultinject.TargetGyro,
		Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 4,
	}
	var res sim.Result
	for i := 0; i < b.N; i++ {
		res = figureRun(b, m, inj)
	}
	logTrajectory(b, m, res)
	if res.Outcome != sim.OutcomeFailsafe {
		b.Errorf("Fig. 4 outcome = %v, paper reports failsafe", res.Outcome)
	}
	b.ReportMetric(res.FlightDurationSec, "flight_s")
}

// BenchmarkFig5 reproduces Figure 5: random values injected into the
// whole IMU for 30 s — the paper observes a fast, violent crash since
// neither sensor can stabilize the vehicle.
func BenchmarkFig5(b *testing.B) {
	m := mission.Valencia()[4]
	inj := faultinject.Injection{
		Primitive: faultinject.Random, Target: faultinject.TargetIMU,
		Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 5,
	}
	var res sim.Result
	for i := 0; i < b.N; i++ {
		res = figureRun(b, m, inj)
	}
	logTrajectory(b, m, res)
	// The paper's run impacted the ground; ours is terminated by the
	// failure detector ~2.4 s after onset while tumbling. Both are a
	// quick violent loss of the vehicle — assert that shape.
	if res.Outcome == sim.OutcomeCompleted {
		b.Error("Fig. 5 scenario completed; the paper reports a violent crash")
	}
	if res.FlightDurationSec > 120 {
		b.Errorf("Fig. 5 failure at %.1f s; the paper reports a very quick loss", res.FlightDurationSec)
	}
	b.ReportMetric(res.FlightDurationSec, "flight_s")
}

// BenchmarkAblationRateSource is the factorial fault-path ablation: where
// does gyro-fault damage enter — the raw-gyro rate loop, the EKF, or
// both? (DESIGN.md ablation #1.)
func BenchmarkAblationRateSource(b *testing.B) {
	m := mission.Valencia()[4]
	inj := &faultinject.Injection{
		Primitive: faultinject.Zeros, Target: faultinject.TargetGyro,
		Start: 90 * time.Second, Duration: 10 * time.Second, Seed: 1,
	}
	arms := []struct {
		name                  string
		shieldRate, shieldEKF bool
	}{
		{"exposed", false, false},
		{"shield-rate-loop", true, false},
		{"shield-ekf", false, true},
		{"shield-both", true, true},
	}
	for i := 0; i < b.N; i++ {
		for _, arm := range arms {
			cfg := sim.DefaultConfig()
			cfg.ShieldRateLoop = arm.shieldRate
			cfg.ShieldEKF = arm.shieldEKF
			res, err := sim.Run(cfg, m, inj, nil)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.Logf("%-18s -> %v (%.1f s)", arm.name, res.Outcome, res.FlightDurationSec)
				completed := 0.0
				if res.Outcome.Completed() {
					completed = 1
				}
				b.ReportMetric(completed, arm.name+"_completed")
			}
		}
	}
}

// BenchmarkAblationGyroThreshold sweeps the failsafe gyro threshold (the
// paper quotes PX4's 60 deg/s default as configurable) and reports how
// detection latency and outcome change. (DESIGN.md ablation #2.)
func BenchmarkAblationGyroThreshold(b *testing.B) {
	m := mission.Valencia()[4]
	// Gyro Noise (±200 °/s perturbation) straddles realistic thresholds;
	// a full-scale fault would trip every setting identically.
	inj := &faultinject.Injection{
		Primitive: faultinject.Noise, Target: faultinject.TargetGyro,
		Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		for _, degS := range []float64{30, 60, 120, 240} {
			cfg := sim.DefaultConfig()
			cfg.Failsafe.GyroRateThreshold = mathx.Deg2Rad(degS)
			res, err := sim.Run(cfg, m, inj, nil)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.Logf("threshold %3.0f°/s -> %v at %.1f s (%s%s)",
					degS, res.Outcome, res.FlightDurationSec, res.FailsafeCause, res.CrashReason)
				b.ReportMetric(res.FlightDurationSec, fmt.Sprintf("t%.0fdegs_flight_s", degS))
			}
		}
	}
}

// BenchmarkAblationIsolationDelay varies the redundant-sensor isolation
// stage (the paper: failsafe takes >= 1900 ms because isolation runs
// first) and reports the time from fault onset to failsafe.
// (DESIGN.md ablation #3.)
func BenchmarkAblationIsolationDelay(b *testing.B) {
	m := mission.Valencia()[4]
	inj := &faultinject.Injection{
		Primitive: faultinject.MinValue, Target: faultinject.TargetGyro,
		Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		for _, delay := range []float64{0, 1.9, 5.0} {
			cfg := sim.DefaultConfig()
			cfg.Failsafe.IsolationDelaySec = delay
			res, err := sim.Run(cfg, m, inj, nil)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				latency := res.FlightDurationSec - 90
				b.Logf("isolation %.1fs -> %v, %.2f s after onset", delay, res.Outcome, latency)
				b.ReportMetric(latency, fmt.Sprintf("iso%.1fs_latency_s", delay))
			}
		}
	}
}

// BenchmarkAblationInnovationGate toggles the EKF innovation gate to show
// why "Zeros were better handled than Min and Max": without gating, a
// full-scale accelerometer fault feeds straight into the state.
// (DESIGN.md ablation #4.)
func BenchmarkAblationInnovationGate(b *testing.B) {
	m := mission.Valencia()[4]
	inj := &faultinject.Injection{
		Primitive: faultinject.Zeros, Target: faultinject.TargetAccel,
		Start: 90 * time.Second, Duration: 10 * time.Second, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		for _, gate := range []float64{0, 5} {
			cfg := sim.DefaultConfig()
			cfg.EKF.GateSigma = gate
			res, err := sim.Run(cfg, m, inj, nil)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				name := "gate-off"
				if gate > 0 {
					name = "gate-5sigma"
				}
				b.Logf("%s -> %v, %d inner violations, %.1f s", name, res.Outcome, res.InnerViolations, res.FlightDurationSec)
				b.ReportMetric(float64(res.InnerViolations), name+"_inner")
			}
		}
	}
}

// BenchmarkAblationRedundancy challenges the paper's all-units fault
// assumption (DESIGN.md ablation notes): the same gyro faults strike all
// three IMUs (the paper's setup) vs. only one, with cross-unit
// consistency voting active. Metrics: 1 = completed, 0 = lost.
func BenchmarkAblationRedundancy(b *testing.B) {
	m := mission.Valencia()[4]
	prims := []faultinject.Primitive{faultinject.MinValue, faultinject.Zeros, faultinject.Freeze, faultinject.Random}
	for i := 0; i < b.N; i++ {
		for _, p := range prims {
			for _, scope := range []faultinject.Scope{faultinject.ScopeAllUnits, faultinject.ScopePrimaryUnit} {
				inj := &faultinject.Injection{
					Primitive: p, Target: faultinject.TargetGyro,
					Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 3,
					Scope: scope,
				}
				res, err := sim.Run(sim.DefaultConfig(), m, inj, nil)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.Logf("gyro %-12v %-13v -> %v (%.1f s)", p, scope, res.Outcome, res.FlightDurationSec)
					v := 0.0
					if res.Outcome.Completed() {
						v = 1
					}
					b.ReportMetric(v, fmt.Sprintf("%v_%v", p, scope))
				}
			}
		}
	}
}

// BenchmarkMitigation evaluates the software mitigation stack (the
// paper's proposed future work, DESIGN.md section 8): representative
// faults with the pipeline off vs. on. Metrics report 1 for completed,
// 0.5 for controlled failsafe, 0 for crash — higher is safer.
func BenchmarkMitigation(b *testing.B) {
	m := mission.Valencia()[4]
	faults := []struct {
		name string
		p    faultinject.Primitive
		tg   faultinject.Target
	}{
		{"gyro-noise", faultinject.Noise, faultinject.TargetGyro},
		{"gyro-freeze", faultinject.Freeze, faultinject.TargetGyro},
		{"gyro-min", faultinject.MinValue, faultinject.TargetGyro},
		{"acc-min", faultinject.MinValue, faultinject.TargetAccel},
		{"imu-freeze", faultinject.Freeze, faultinject.TargetIMU},
	}
	score := func(o sim.Outcome) float64 {
		switch o {
		case sim.OutcomeCompleted:
			return 1
		case sim.OutcomeFailsafe:
			return 0.5
		default:
			return 0
		}
	}
	for i := 0; i < b.N; i++ {
		for _, f := range faults {
			inj := &faultinject.Injection{
				Primitive: f.p, Target: f.tg,
				Start: 90 * time.Second, Duration: 10 * time.Second, Seed: 3,
			}
			for _, on := range []bool{false, true} {
				cfg := sim.DefaultConfig()
				if on {
					cfg.Mitigation = mitigation.DefaultConfig()
				}
				res, err := sim.Run(cfg, m, inj, nil)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					label := f.name + "_baseline"
					if on {
						label = f.name + "_mitigated"
					}
					b.Logf("%-24s -> %v (%s%s)", label, res.Outcome, res.FailsafeCause, res.CrashReason)
					b.ReportMetric(score(res.Outcome), label)
				}
			}
		}
	}
}

// BenchmarkMicroMitigation measures the pipeline's per-sample overhead —
// it must be deployable at the 250 Hz IMU rate.
func BenchmarkMicroMitigation(b *testing.B) {
	p, err := mitigation.NewPipeline(mitigation.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	s := sensors.IMUSample{Accel: mathx.V3(0.01, -0.02, -9.81), Gyro: mathx.V3(0.02, 0, 0.01)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Accel.X += 1e-9 // defeat the stuck guard: nominal streams are noisy
		_, _ = p.Apply(s)
	}
}

// BenchmarkUavlint lints the repository's own internal/ tree with the
// full analyzer suite, so the static-analysis gate's cost shows up in
// the perf trajectory alongside the simulation hot paths. The runner is
// reused across iterations: the first pays the standard-library
// type-check, the steady state is what CI re-runs feel like.
func BenchmarkUavlint(b *testing.B) {
	runner, err := lint.NewRunner(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		findings, err := runner.Run("./internal/...")
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("repository is not lint-clean: %v", findings)
		}
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkMicroPhysicsStep measures one rigid-body integration step.
func BenchmarkMicroPhysicsStep(b *testing.B) {
	body, err := physics.NewBody(physics.DefaultParams(), physics.CalmWind())
	if err != nil {
		b.Fatal(err)
	}
	hover := physics.DefaultParams().HoverThrustFraction()
	body.SetMotorCommands(physics.Rotors{hover, hover, hover, hover})
	st := body.State()
	st.Pos.Z = -20
	body.SetState(st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Step(0.002)
	}
}

// BenchmarkMicroEKFPredict measures one 15-state EKF prediction on the
// exact per-step covariance path (k=1, comparable across report history).
func BenchmarkMicroEKFPredict(b *testing.B) {
	cfg := ekf.DefaultConfig()
	cfg.CovarianceDecimation = 1
	f := ekf.New(cfg)
	s := sensors.IMUSample{Accel: mathx.V3(0, 0, -physics.Gravity)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.T = float64(i) * 0.004
		f.Predict(s, 0.004)
	}
}

// BenchmarkMicroEKFPredictDecimated measures one prediction under the
// default decimated covariance path (k=4): three cheap transition
// compositions amortized against one heavier flush.
func BenchmarkMicroEKFPredictDecimated(b *testing.B) {
	f := ekf.New(ekf.DefaultConfig())
	s := sensors.IMUSample{Accel: mathx.V3(0, 0, -physics.Gravity)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.T = float64(i) * 0.004
		f.Predict(s, 0.004)
	}
}

// BenchmarkMicroEKFFuseGPS measures one GPS fusion (6 scalar updates).
func BenchmarkMicroEKFFuseGPS(b *testing.B) {
	f := ekf.New(ekf.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FuseGPS(sensors.GPSSample{T: float64(i) * 0.2, Valid: true})
	}
}

// BenchmarkMicroInjectorApply measures fault-corruption overhead per IMU
// sample inside the fault window.
func BenchmarkMicroInjectorApply(b *testing.B) {
	j, err := faultinject.New(faultinject.Injection{
		Primitive: faultinject.Random, Target: faultinject.TargetIMU,
		Start: 0, Duration: time.Hour, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := sensors.IMUSample{T: 1, Accel: mathx.V3(0, 0, -9.8)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = j.Apply(s)
	}
}

// BenchmarkMicroMixerAllocate measures control allocation.
func BenchmarkMicroMixerAllocate(b *testing.B) {
	m := physics.NewMixer(physics.DefaultParams())
	for i := 0; i < b.N; i++ {
		_ = m.Allocate(14.7, mathx.V3(0.1, -0.1, 0.01))
	}
}

// BenchmarkMicroIMUSampleVote measures the 250 Hz sensing step: sampling
// all three redundant IMUs plus the cross-unit outlier vote.
func BenchmarkMicroIMUSampleVote(b *testing.B) {
	imus, err := sensors.NewRedundantIMUs(3, sensors.DefaultIMUSpec(), mathx.NewRand(3))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]sensors.IMUSample, 0, 3)
	accel := mathx.V3(0, 0, -physics.Gravity)
	gyro := mathx.V3(0.01, -0.02, 0.005)
	cfg := sim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := imus.SampleAllInto(buf, float64(i)*0.004, accel, gyro)
		_ = sensors.VoteOutlier(all, imus.Primary(), cfg.VoteAccelTol, cfg.VoteGyroTol)
	}
}

// BenchmarkMicroControlUpdate measures one full cascade pass (position,
// velocity, attitude, and rate loops down to rotor commands).
func BenchmarkMicroControlUpdate(b *testing.B) {
	ctl := control.New(control.DefaultGains(), physics.DefaultParams(), 0.004)
	est := control.Estimate{Att: mathx.QuatIdentity(), Vel: mathx.V3(1, 0, 0), Pos: mathx.V3(0, 0, -20)}
	sp := control.Setpoint{Pos: mathx.V3(50, 10, -25), Yaw: 0.3, CruiseSpeed: 8, MaxClimb: 3, MaxDescend: 2}
	gyro := mathx.V3(0.01, -0.02, 0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ctl.Update(0.004, est, gyro, sp)
	}
}

// BenchmarkMicroBubbleObserve measures one tracker observation (nearest
// point on route + dynamic outer bubble).
func BenchmarkMicroBubbleObserve(b *testing.B) {
	m := mission.Valencia()[4]
	tr, err := bubble.NewTracker(m, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := mathx.V3(2100, 900, -15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(float64(i), p, 3.3)
	}
}

// BenchmarkMicroCodecRoundTrip measures telemetry encode+decode.
func BenchmarkMicroCodecRoundTrip(b *testing.B) {
	pos := telemetry.Position{TimeSec: 1, X: 2, Y: 3, Z: -15, VX: 1}
	for i := 0; i < b.N; i++ {
		f, err := telemetry.EncodePosition(uint8(i), 1, pos)
		if err != nil {
			b.Fatal(err)
		}
		raw, err := f.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := telemetry.ReadFrameBytes(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroNormFloat64Polar measures one normal deviate under the
// default Marsaglia polar sampler (two deviates per acceptance, one
// cached as the spare).
func BenchmarkMicroNormFloat64Polar(b *testing.B) {
	r := mathx.NewRandPolicy(1, mathx.NormPolar)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

// BenchmarkMicroNormFloat64Ziggurat measures one normal deviate under the
// 128-layer ziggurat sampler (inside-rectangle fast path ~98% of draws).
func BenchmarkMicroNormFloat64Ziggurat(b *testing.B) {
	r := mathx.NewRandPolicy(1, mathx.NormZiggurat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

// BenchmarkMicroSimTenSeconds measures ten full simulated vehicle-seconds
// (physics + sensing + EKF + control + monitoring) per iteration — the
// cost unit behind the campaign's wall-clock time.
func BenchmarkMicroSimTenSeconds(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.MaxSimTime = 10 // the mission cannot finish in 10 s: fixed work
	m := mission.Valencia()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, m, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroObsCounterInc measures the observability hot path: one
// resolved-counter increment, the cost the flight-data recorder adds to
// every 500 Hz physics step. Must stay 0 allocs/op.
func BenchmarkMicroObsCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("steps")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkMicroObsHistogramObserve measures one histogram observation
// (bucket scan + two atomic adds + CAS sum). Must stay 0 allocs/op.
func BenchmarkMicroObsHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("lat", []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%37) * 0.1)
	}
}

// BenchmarkMicroObsTraceAppend measures one trace-ring append (including
// steady-state eviction once the ring is full). Must stay 0 allocs/op.
func BenchmarkMicroObsTraceAppend(b *testing.B) {
	tb := obs.NewTraceBuffer(obs.DefaultTraceCapacity)
	e := obs.Event{Kind: obs.EventPhase, Detail: "2"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.T = float64(i)
		tb.Append(e)
	}
}

// BenchmarkMicroObsSpanStartEnd measures one campaign span open/close
// pair — the per-case tracing cost every worker pays when -trace-out is
// set. Must stay 0 allocs/op once the span slice has capacity.
func BenchmarkMicroObsSpanStartEnd(b *testing.B) {
	tr := obs.NewTracer(obs.Stopped(), 1<<16)
	root := tr.Start("campaign", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := tr.Start("case", root, obs.StrAttr("id", "m01-gold"))
		tr.End(id)
		if tr.Len() >= 1<<16 {
			tr.Reset()
			root = tr.Start("campaign", 0)
		}
	}
}

// BenchmarkMicroCoreStatusSnapshot measures one live-status render: the
// cost each /status request (and SSE tick) puts on a running campaign.
func BenchmarkMicroCoreStatusSnapshot(b *testing.B) {
	reg := obs.NewRegistry()
	src := core.NewStatusSource(reg, core.StatusConfig{
		Total: 850, RunnerMode: "batch", BatchWidth: 32, Workers: 8,
	})
	reg.Counter("campaign_cases_total").Add(425)
	reg.Histogram("campaign_case_seconds", nil).Observe(0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := src.Snapshot(); st.CasesTotal != 850 {
			b.Fatal("bad snapshot")
		}
	}
}
