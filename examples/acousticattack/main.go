// Acoustic attack scenario: the paper's fault model maps acoustic
// injection attacks on MEMS gyroscopes (Son et al., USENIX Security'15)
// to the Random primitive. This example recreates the paper's Figure 4
// setup — random gyro values injected for 30 seconds just before a
// turning point — and prints a timeline of the attack's effect on the
// flight.
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"uavres"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "acousticattack:", err)
		os.Exit(1)
	}
}

func run() error {
	// Mission 5 turns ~110 s into the flight; an attack window opening at
	// T+90 s covers the approach to the waypoint and the turn itself.
	cfg := uavres.DefaultConfig()
	m := uavres.ValenciaMissions()[4]

	attack := &uavres.Injection{
		Primitive: uavres.Random, // acoustic resonance: garbage rate output
		Target:    uavres.TargetGyro,
		Start:     90 * time.Second,
		Duration:  30 * time.Second,
		Seed:      2024,
	}

	fmt.Printf("acoustic attack on mission %d (%s)\n", m.ID, m.Name)
	fmt.Printf("attack window: %v + %v (covers the turning point)\n\n", attack.Start, attack.Duration)
	fmt.Println("   time   deviation   inner-bubble   status")

	res, err := uavres.RunMission(cfg, m, attack, func(tel uavres.Telemetry) {
		// Print a sparse timeline around the attack window.
		t := tel.T
		if t < 80 || t > 135 || int(math.Round(t))%5 != 0 {
			return
		}
		status := "nominal"
		switch {
		case attack.Start.Seconds() <= t && t < (attack.Start+attack.Duration).Seconds():
			status = "UNDER ATTACK"
		case tel.Bubble.InnerViolated:
			status = "inner bubble violated"
		}
		fmt.Printf("  %5.0fs   %7.2fm   %9.2fm     %s\n",
			t, tel.Bubble.Deviation, tel.Bubble.InnerRadius, status)
	})
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Printf("outcome: %v", res.Outcome)
	if res.FailsafeCause != "" {
		fmt.Printf(" — failsafe engaged (%s), as in the paper's Fig. 4", res.FailsafeCause)
	}
	if res.CrashReason != "" {
		fmt.Printf(" — %s", res.CrashReason)
	}
	fmt.Println()
	fmt.Printf("flight lasted %.1f s of a ~475 s nominal mission\n", res.FlightDurationSec)
	return nil
}
