// Bubble monitor: wires two simultaneous simulated flights through the
// full telemetry path — vehicle → tracker client → TCP broker → U-space
// tracking service — and reports live bubble radii (the paper's Fig. 2
// two-layer concept) plus any pairwise separation conflicts.
//
// One of the drones is attacked mid-flight, so its bubble violations show
// up at the U-space side exactly the way the paper's platform records
// them.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"uavres"
	"uavres/internal/telemetry"
	"uavres/internal/uspace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bubblemonitor:", err)
		os.Exit(1)
	}
}

func run() error {
	broker, err := telemetry.NewBroker("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer broker.Close()
	fmt.Printf("broker on %s\n", broker.Addr())

	// U-space side: subscribe and track.
	tracker := uspace.NewTracker()
	sub, err := telemetry.NewSubscriber(broker.Addr())
	if err != nil {
		return err
	}
	defer sub.Close()
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		_ = uspace.Pump(sub, tracker)
	}()

	// Vehicle side: two missions flown "concurrently" (each in its own
	// goroutine, each with its own publisher). Mission 5 suffers an
	// accelerometer dropout; mission 6 flies clean.
	missions := uavres.ValenciaMissions()
	flights := []struct {
		m   uavres.Mission
		inj *uavres.Injection
	}{
		{missions[4], &uavres.Injection{
			Primitive: uavres.Zeros, Target: uavres.TargetAccel,
			Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 5,
		}},
		{missions[5], nil},
	}

	var wg sync.WaitGroup
	results := make([]uavres.Result, len(flights))
	for i, fl := range flights {
		pub, err := telemetry.NewPublisher(broker.Addr())
		if err != nil {
			return err
		}
		client := telemetry.NewTrackerClient(pub, uint8(fl.m.ID))
		wg.Add(1)
		go func(i int, m uavres.Mission, inj *uavres.Injection) {
			defer wg.Done()
			defer pub.Close()
			cfg := uavres.DefaultConfig()
			cfg.Seed = int64(100 + m.ID)
			res, err := uavres.RunMission(cfg, m, inj, client.Observe)
			if err == nil {
				results[i] = res
			}
		}(i, fl.m, fl.inj)
	}
	wg.Wait()
	broker.Close()
	<-pumpDone

	fmt.Println()
	fmt.Print(tracker.Summary())
	fmt.Println()
	for i, fl := range flights {
		label := "gold"
		if fl.inj != nil {
			label = fl.inj.Label()
		}
		d, _ := tracker.Drone(uint8(fl.m.ID))
		fmt.Printf("mission %d (%s): outcome=%v, U-space recorded %d inner / %d outer violations\n",
			fl.m.ID, label, results[i].Outcome, d.InnerViolations, d.OuterViolations)
	}
	if conflicts := tracker.Conflicts(); len(conflicts) > 0 {
		fmt.Printf("separation conflicts: %d (missions flew intersecting volumes)\n", len(conflicts))
	} else {
		fmt.Println("separation conflicts: none (missions are geographically separated)")
	}
	return nil
}
