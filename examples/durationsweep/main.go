// Duration sweep: the paper's central finding is that injection duration
// drives severity (Table II) — but that even 2-second faults already fail
// 80% of missions. This example sweeps one fault type over the paper's
// four durations on every mission and prints a Table-II-style row per
// duration, isolating the duration effect for a single fault.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"uavres"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "durationsweep:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		primitive = uavres.Freeze
		target    = uavres.TargetAccel
	)
	missions := uavres.ValenciaMissions()
	durations := []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second, 30 * time.Second}

	fmt.Printf("duration sweep: %s %s on all %d missions\n\n",
		target, primitive, len(missions))
	fmt.Printf("%-10s %10s %10s %12s %12s %10s\n",
		"duration", "inner(#)", "outer(#)", "completed", "duration(s)", "dist(km)")

	for _, d := range durations {
		// Build one case per mission for this duration.
		cases := make([]uavres.Case, 0, len(missions))
		for _, m := range missions {
			inj := &uavres.Injection{
				Primitive: primitive, Target: target,
				Start: 90 * time.Second, Duration: d,
				Seed: int64(m.ID)*100 + int64(d.Seconds()),
			}
			cases = append(cases, uavres.Case{
				ID:        fmt.Sprintf("m%02d-%ds", m.ID, int(d.Seconds())),
				MissionID: m.ID,
				Injection: inj,
				Seed:      int64(m.ID),
			})
		}

		var inner, outer, dur, dist float64
		var completed int
		for _, c := range cases {
			m := missions[c.MissionID-1]
			cfg := uavres.DefaultConfig()
			cfg.Seed = c.Seed
			res, err := uavres.RunMission(cfg, m, c.Injection)
			if err != nil {
				return err
			}
			inner += float64(res.InnerViolations)
			outer += float64(res.OuterViolations)
			dur += res.FlightDurationSec
			dist += res.DistanceKm
			if res.Outcome.Completed() {
				completed++
			}
		}
		n := float64(len(cases))
		fmt.Printf("%-10v %10.2f %10.2f %11.1f%% %12.1f %10.2f\n",
			d, inner/n, outer/n, 100*float64(completed)/n, dur/n, dist/n)
	}

	// Context is accepted by the campaign API too; demonstrate a scoped
	// partial sweep through it (the 2-second cases of mission 1 only).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sub := uavres.RunCampaign(ctx, uavres.CampaignOptions{
		Missions: missions[:1],
		Workers:  1,
	})
	fmt.Printf("\n(full-campaign API spot check: mission 1 alone contributes %d cases)\n", len(sub))
	return nil
}
