// Mitigation: the paper's discussion calls for "software-based mitigation
// techniques in addition to hardware redundancies". This example runs a
// small head-to-head — representative IMU faults with and without the
// mitigation pipeline (gyro plausibility clamp, spike-median filter,
// stuck-sensor guard) — and prints what each mechanism buys, including
// the one thing it must never do: mask a fault from the failsafe.
package main

import (
	"fmt"
	"os"
	"time"

	"uavres"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mitigation:", err)
		os.Exit(1)
	}
}

func run() error {
	m := uavres.ValenciaMissions()[4]
	faults := []struct {
		label string
		p     uavres.Primitive
		tg    uavres.Target
	}{
		{"frozen gyro (Constant output)", uavres.Freeze, uavres.TargetGyro},
		{"dead gyro (Gyro failure)", uavres.Zeros, uavres.TargetGyro},
		{"full-scale gyro (OS attack)", uavres.MinValue, uavres.TargetGyro},
		{"dead accel (Acc failure)", uavres.Zeros, uavres.TargetAccel},
	}

	fmt.Printf("mission %d, 10-second faults at T+90 s\n\n", m.ID)
	fmt.Printf("%-32s %-28s %-28s\n", "fault", "baseline", "with mitigation")

	for _, f := range faults {
		inj := &uavres.Injection{
			Primitive: f.p, Target: f.tg,
			Start: 90 * time.Second, Duration: 10 * time.Second, Seed: 3,
		}
		baseline, err := flyOnce(m, inj, false)
		if err != nil {
			return err
		}
		protected, err := flyOnce(m, inj, true)
		if err != nil {
			return err
		}
		fmt.Printf("%-32s %-28s %-28s\n", f.label, describe(baseline), describe(protected))
	}

	fmt.Println()
	fmt.Println("the stuck-sensor guard detects constant output (Freeze/Zeros/")
	fmt.Println("full-scale constants) within ~100 ms — an order of magnitude")
	fmt.Println("before the 60°/s-threshold path — and converts uncontrolled")
	fmt.Println("crashes into controlled terminations.")
	fmt.Println()
	fmt.Println("two sharp edges, both kept deliberately:")
	fmt.Println(" 1. the guard is conservative — it also aborts missions the stack")
	fmt.Println("    could have ridden out (the dead-accelerometer row above")
	fmt.Println("    completes unprotected). abort policy is a per-sensor decision.")
	fmt.Println(" 2. detection must read the RAW stream: run")
	fmt.Println("    `go test -run TestMitigationMaskingHazard ./internal/sim/`")
	fmt.Println("    to see a smoothing stage mask a fault from the failsafe.")
	return nil
}

func flyOnce(m uavres.Mission, inj *uavres.Injection, mitigated bool) (uavres.Result, error) {
	cfg := uavres.DefaultConfig()
	cfg.Seed = 3
	if mitigated {
		cfg.Mitigation = uavres.DefaultMitigation()
	}
	return uavres.RunMission(cfg, m, inj)
}

func describe(r uavres.Result) string {
	switch {
	case r.Outcome == uavres.OutcomeCompleted:
		return fmt.Sprintf("completed (%.0f s)", r.FlightDurationSec)
	case r.CrashReason != "":
		return fmt.Sprintf("CRASH: %s (%.1f s)", r.CrashReason, r.FlightDurationSec)
	default:
		return fmt.Sprintf("failsafe: %s (%.1f s)", r.FailsafeCause, r.FlightDurationSec)
	}
}
