// Quickstart: fly one fault-free Valencia mission through the public API,
// then repeat it with a 10-second gyroscope freeze injected at the
// 90-second mark, and compare the paper's metrics side by side.
package main

import (
	"fmt"
	"os"
	"time"

	"uavres"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := uavres.DefaultConfig()
	m := uavres.ValenciaMissions()[3] // mission 4: 12 km/h straight courier

	fmt.Printf("mission %d: %s (%s, %.0f km/h cruise)\n\n",
		m.ID, m.Name, m.Drone.Name, m.CruiseSpeedMS*3.6)

	// 1. Gold run: the fault-free reference trajectory.
	gold, err := uavres.RunMission(cfg, m, nil)
	if err != nil {
		return err
	}
	report("gold run", gold)

	// 2. The same mission under a Gyro Freeze fault (Table I: "Constant
	// output") for 10 seconds starting at T+90 s.
	inj := &uavres.Injection{
		Primitive: uavres.Freeze,
		Target:    uavres.TargetGyro,
		Start:     90 * time.Second,
		Duration:  10 * time.Second,
		Seed:      7,
	}
	faulty, err := uavres.RunMission(cfg, m, inj)
	if err != nil {
		return err
	}
	report(inj.Label(), faulty)

	fmt.Println("the gyroscope feeds the innermost control loop directly;")
	fmt.Println("freezing it for even a few seconds destroys the flight, while")
	fmt.Println("the same fault on the accelerometer is usually survivable.")
	return nil
}

func report(label string, r uavres.Result) {
	fmt.Printf("%s:\n", label)
	fmt.Printf("  outcome:           %v", r.Outcome)
	if r.CrashReason != "" {
		fmt.Printf(" (%s)", r.CrashReason)
	}
	if r.FailsafeCause != "" {
		fmt.Printf(" (%s)", r.FailsafeCause)
	}
	fmt.Println()
	fmt.Printf("  flight duration:   %.1f s\n", r.FlightDurationSec)
	fmt.Printf("  distance traveled: %.2f km\n", r.DistanceKm)
	fmt.Printf("  bubble violations: inner=%d outer=%d\n\n", r.InnerViolations, r.OuterViolations)
}
