package uavres

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"uavres/internal/mathx"
)

// hop is a short mission for fast API-level tests.
func hop() Mission {
	start := ValenciaMissions()[0].Start
	return Mission{
		ID: 1, Name: "api hop", CruiseSpeedMS: 3.3, AltitudeM: 15,
		Drone: DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5},
		Start: start,
		Waypoints: []mathx.Vec3{
			{X: start.X, Y: start.Y + 90, Z: -15},
		},
	}
}

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunMission(cfg, hop(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.Completed() {
		t.Fatalf("gold hop outcome = %v", res.Outcome)
	}
}

func TestPublicFaultInjectionFlow(t *testing.T) {
	inj := &Injection{
		Primitive: MinValue, Target: TargetGyro,
		Start: 20 * time.Second, Duration: 2 * time.Second,
	}
	res, err := RunMission(DefaultConfig(), hop(), inj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == OutcomeCompleted {
		t.Error("gyro-min flight completed")
	}
}

func TestPublicObserver(t *testing.T) {
	count := 0
	_, err := RunMission(DefaultConfig(), hop(), nil, func(Telemetry) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("observer never called")
	}
}

func TestScenarioAndFaultModelAccessors(t *testing.T) {
	if got := len(ValenciaMissions()); got != 10 {
		t.Errorf("missions = %d", got)
	}
	// Table I's 14 sensor classes plus the three actuator classes.
	if got := len(FaultModel()); got != 17 {
		t.Errorf("fault classes = %d", got)
	}
	if got := len(Primitives()); got != 7 {
		t.Errorf("primitives = %d", got)
	}
	if got := len(Targets()); got != 3 {
		t.Errorf("targets = %d", got)
	}
	if got := len(ActuatorPrimitives()); got != 3 {
		t.Errorf("actuator primitives = %d", got)
	}
	if frame, err := ParseAirframe("octo-x"); err != nil || frame != OctoX {
		t.Errorf("ParseAirframe(octo-x) = %v, %v", frame, err)
	}
}

func TestInnerBubbleRadius(t *testing.T) {
	spec := DroneSpec{DimensionM: 1, SafetyDistM: 2, MaxSpeedMS: 4}
	if got := InnerBubbleRadius(spec, 1); got != 5 {
		t.Errorf("InnerBubbleRadius = %v, want 1 + max(2, 4) = 5", got)
	}
}

func TestPlanCampaignDefaults(t *testing.T) {
	cases := PlanCampaign(CampaignOptions{})
	if len(cases) != 850 {
		t.Errorf("cases = %d, want 850", len(cases))
	}
}

func TestRunCampaignSubsetAndPersistence(t *testing.T) {
	ms := []Mission{hop()}
	var progressed int
	results := RunCampaign(context.Background(), CampaignOptions{
		Missions: ms,
		Workers:  2,
		Progress: func(done, total int) { progressed = done },
		Config: func() Config {
			c := DefaultConfig()
			c.MaxSimTime = 120 // the hop finishes in ~55 s; faults hit at 90 s
			return c
		}(),
	})
	if len(results) != 85 {
		t.Fatalf("results = %d, want 85 (one mission)", len(results))
	}
	if progressed != 85 {
		t.Errorf("progress reached %d", progressed)
	}

	path := filepath.Join(t.TempDir(), "results.json")
	if err := SaveResults(path, results); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(results) {
		t.Errorf("loaded %d results", len(loaded))
	}

	// The tables render from either live or loaded results.
	t2 := TableII(loaded)
	if !strings.Contains(t2, "Gold Run") {
		t.Errorf("table II = %q", t2)
	}
	if !strings.Contains(TableIII(loaded), "Gyro") {
		t.Error("table III missing Gyro rows")
	}
	if !strings.Contains(TableIV(loaded), "Failsafe") {
		t.Error("table IV missing failsafe column")
	}
	if !strings.Contains(TableI(), "Acoustic attack") {
		t.Error("table I missing fault class")
	}
	gold := GoldStats(loaded)
	if gold.N != 1 || gold.CompletedPct != 100 {
		t.Errorf("gold stats = %+v", gold)
	}
	if got := len(StatsByDuration(loaded)); got != 4 {
		t.Errorf("duration groups = %d", got)
	}
	if got := len(StatsByFault(loaded)); got != 21 {
		t.Errorf("fault groups = %d", got)
	}
	if got := len(StatsByComponent(loaded)); got != 3 {
		t.Errorf("component groups = %d", got)
	}
}
